//! # tle-core — Transactional Lock Elision runtime
//!
//! This crate is the reproduction of the paper's central artifact: a TLE
//! runtime in the style of the C++ TM Technical Specification as implemented
//! by GCC, with the extensions the paper proposes. It glues together the
//! `ml_wt` STM (`tle-stm`), the simulated best-effort HTM (`tle-htm`) and
//! the global serialization gate into a single system against which the
//! applications (`tle-pbz`, `tle-wfe`) and microbenchmarks (`tle-txset`)
//! are written **once**, then run under any of the paper's five algorithms:
//!
//! | [`AlgoMode`]             | Paper legend              |
//! |--------------------------|---------------------------|
//! | `Baseline`               | pthreads (original locks) |
//! | `StmSpin`                | STM + Spin                |
//! | `StmCondvar`             | STM + CondVar             |
//! | `StmCondvarNoQuiesce`    | STM + CondVar + NoQuiesce |
//! | `HtmCondvar`             | HTM + CondVar             |
//!
//! Critical sections are expressed as closures over a [`TxCtx`]; under
//! `Baseline` the [`ElidableMutex`] really locks and accesses go straight to
//! memory, under the TM modes the lock is *erased* (paper §IV-A) and the
//! closure runs as a transaction with automatic retry, contention backoff
//! and serial-irrevocable fallback. Waiting uses [`TxCondvar`]s — Wang-style
//! transaction-friendly condition variables with deferred signals and timed
//! waits (paper §VI-d).

mod condvar;
mod ctx;
mod domain;
mod elide;
mod runner;
mod runner_async;
mod system;

pub use condvar::TxCondvar;
pub use ctx::{TxCtx, TxError};
pub use domain::{
    admission_decide, decide, AdaptiveConfig, AdmissionConfig, AdmissionStep, ModeSwitchEvent,
    SwitchReason,
};
pub use elide::ElidableMutex;
pub use system::{
    AlgoMode, ControllerHandle, DomainStats, InvalidAlgoMode, ParseAlgoModeError, ThreadHandle,
    TlePolicy, TmSystem, TmSystemBuilder, TxHints, TxRequest,
};

/// Convenience result type for transactional closures.
pub type TxResult<T> = Result<T, TxError>;

/// All five algorithm modes, in the order the paper's figures list them.
pub const ALL_MODES: [AlgoMode; 5] = [
    AlgoMode::Baseline,
    AlgoMode::StmSpin,
    AlgoMode::StmCondvar,
    AlgoMode::StmCondvarNoQuiesce,
    AlgoMode::HtmCondvar,
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tle_base::TCell;

    #[test]
    fn counter_is_exact_under_every_mode() {
        for mode in ALL_MODES {
            let sys = Arc::new(TmSystem::new(mode));
            let lock = Arc::new(ElidableMutex::new("counter"));
            let cell = Arc::new(TCell::new(0u64));
            const THREADS: usize = 4;
            const OPS: u64 = 1_000;
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let sys = Arc::clone(&sys);
                    let lock = Arc::clone(&lock);
                    let cell = Arc::clone(&cell);
                    std::thread::spawn(move || {
                        let th = sys.register();
                        for _ in 0..OPS {
                            th.tx(&lock).run(|ctx| {
                                let v = ctx.read(&*cell)?;
                                ctx.write(&*cell, v + 1)?;
                                Ok(())
                            });
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(
                cell.load_direct(),
                THREADS as u64 * OPS,
                "lost updates under {mode:?}"
            );
        }
    }

    #[test]
    fn bank_transfer_invariant_under_every_mode() {
        // Total balance is conserved under concurrent transfers.
        for mode in ALL_MODES {
            let sys = Arc::new(TmSystem::new(mode));
            let lock = Arc::new(ElidableMutex::new("bank"));
            let accounts: Arc<Vec<TCell<i64>>> =
                Arc::new((0..16).map(|_| TCell::new(100)).collect());
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let sys = Arc::clone(&sys);
                    let lock = Arc::clone(&lock);
                    let accounts = Arc::clone(&accounts);
                    std::thread::spawn(move || {
                        let th = sys.register();
                        let mut rng = tle_base::rng::XorShift64::new(t as u64);
                        for _ in 0..2_000 {
                            let from = rng.below(16) as usize;
                            let to = rng.below(16) as usize;
                            let amt = rng.below(10) as i64;
                            th.tx(&lock).run(|ctx| {
                                let f = ctx.read(&accounts[from])?;
                                let tv = ctx.read(&accounts[to])?;
                                if from != to {
                                    ctx.write(&accounts[from], f - amt)?;
                                    ctx.write(&accounts[to], tv + amt)?;
                                }
                                Ok(())
                            });
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let total: i64 = accounts.iter().map(|a| a.load_direct()).sum();
            assert_eq!(total, 1600, "balance leaked under {mode:?}");
        }
    }

    #[test]
    fn deferred_actions_run_exactly_once_after_commit() {
        for mode in ALL_MODES {
            let sys = Arc::new(TmSystem::new(mode));
            let lock = ElidableMutex::new("defer");
            let th = sys.register();
            let hits = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            for _ in 0..10 {
                let hits2 = Arc::clone(&hits);
                th.tx(&lock).run(move |ctx| {
                    let hits3 = Arc::clone(&hits2);
                    ctx.defer(move || {
                        hits3.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    });
                    Ok(())
                });
            }
            assert_eq!(
                hits.load(std::sync::atomic::Ordering::SeqCst),
                10,
                "defer miscount under {mode:?}"
            );
        }
    }

    #[test]
    fn unsafe_op_serializes_and_completes() {
        for mode in ALL_MODES {
            let sys = Arc::new(TmSystem::new(mode));
            let lock = ElidableMutex::new("io");
            let th = sys.register();
            let cell = TCell::new(0u64);
            let out = th.tx(&lock).run(|ctx| {
                ctx.unsafe_op()?; // e.g. logging while locked
                let v = ctx.read(&cell)?;
                ctx.write(&cell, v + 1)?;
                Ok(v)
            });
            assert_eq!(out, 0);
            assert_eq!(
                cell.load_direct(),
                1,
                "unsafe path lost the write under {mode:?}"
            );
        }
    }

    #[test]
    fn producer_consumer_with_condvar_all_modes() {
        for mode in ALL_MODES {
            let sys = Arc::new(TmSystem::new(mode));
            let lock = Arc::new(ElidableMutex::new("pc"));
            let cv = Arc::new(TxCondvar::new());
            let flag = Arc::new(TCell::new(0u64));
            let value = Arc::new(TCell::new(0u64));

            let consumer = {
                let sys = Arc::clone(&sys);
                let lock = Arc::clone(&lock);
                let cv = Arc::clone(&cv);
                let flag = Arc::clone(&flag);
                let value = Arc::clone(&value);
                std::thread::spawn(move || {
                    let th = sys.register();
                    th.tx(&lock).run(|ctx| {
                        if ctx.read(&*flag)? == 0 {
                            return ctx.wait(&cv, None).map(|_| 0);
                        }
                        ctx.read(&*value)
                    })
                })
            };

            std::thread::sleep(std::time::Duration::from_millis(30));
            let th = sys.register();
            th.tx(&lock).run(|ctx| {
                ctx.write(&*value, 55u64)?;
                ctx.write(&*flag, 1u64)?;
                ctx.signal(&cv)?;
                Ok(())
            });
            let got = consumer.join().unwrap();
            assert_eq!(got, 55, "consumer read wrong value under {mode:?}");
        }
    }

    #[test]
    fn retry_hints_reduce_serial_fallbacks() {
        use tle_htm::HtmConfig;
        // Event-abort-heavy HTM: 2 retries serialize often, 64 rarely.
        let run = |hints: TxHints| {
            let sys = Arc::new(
                TmSystem::builder()
                    .mode(AlgoMode::HtmCondvar)
                    .htm_config(HtmConfig {
                        event_prob: 0.3,
                        ..HtmConfig::default()
                    })
                    .build(),
            );
            let th = sys.register();
            let lock = ElidableMutex::new("hinted");
            let cell = TCell::new(0u64);
            for _ in 0..500 {
                th.tx(&lock).hints(hints).run(|ctx| {
                    ctx.update(&cell, |v| v + 1)?;
                    Ok(())
                });
            }
            assert_eq!(cell.load_direct(), 500);
            sys.stats.serial_fallbacks.get()
        };
        let default_fallbacks = run(TxHints::default());
        let hinted_fallbacks = run(TxHints::new().with_htm_retries(64));
        assert!(
            hinted_fallbacks < default_fallbacks / 2,
            "hinting more retries should cut fallbacks: {hinted_fallbacks} vs {default_fallbacks}"
        );
    }

    #[test]
    fn norec_backend_supports_all_stm_modes() {
        use tle_stm::StmAlgo;
        for mode in [
            AlgoMode::StmSpin,
            AlgoMode::StmCondvar,
            AlgoMode::StmCondvarNoQuiesce,
        ] {
            let sys = Arc::new(TmSystem::new(mode));
            sys.set_stm_algo(StmAlgo::Norec);
            let lock = Arc::new(ElidableMutex::new("norec"));
            let cell = Arc::new(TCell::new(0u64));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let sys = Arc::clone(&sys);
                    let lock = Arc::clone(&lock);
                    let cell = Arc::clone(&cell);
                    std::thread::spawn(move || {
                        let th = sys.register();
                        for _ in 0..1_000 {
                            th.tx(&lock).run(|ctx| {
                                ctx.update(&*cell, |v| v + 1)?;
                                Ok(())
                            });
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(
                cell.load_direct(),
                4_000,
                "lost updates with NOrec under {mode:?}"
            );
        }
    }

    #[test]
    fn norec_condvar_producer_consumer() {
        use tle_stm::StmAlgo;
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        sys.set_stm_algo(StmAlgo::Norec);
        let lock = Arc::new(ElidableMutex::new("pc"));
        let cv = Arc::new(TxCondvar::new());
        let flag = Arc::new(TCell::new(false));
        let consumer = {
            let sys = Arc::clone(&sys);
            let lock = Arc::clone(&lock);
            let cv = Arc::clone(&cv);
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                let th = sys.register();
                th.tx(&lock).run(|ctx| {
                    if !ctx.read(&*flag)? {
                        return ctx.wait(&cv, None);
                    }
                    Ok(())
                });
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        let th = sys.register();
        th.tx(&lock).run(|ctx| {
            ctx.write(&*flag, true)?;
            ctx.signal(&cv)?;
            Ok(())
        });
        consumer.join().unwrap();
    }

    #[test]
    fn adaptive_htm_counter_is_exact() {
        let sys = Arc::new(TmSystem::new(AlgoMode::AdaptiveHtm));
        let lock = Arc::new(ElidableMutex::new("adaptive"));
        let cell = Arc::new(TCell::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let sys = Arc::clone(&sys);
                let lock = Arc::clone(&lock);
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let th = sys.register();
                    for _ in 0..2_000 {
                        th.tx(&lock).run(|ctx| {
                            ctx.update(&*cell, |v| v + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            cell.load_direct(),
            8_000,
            "lost updates under adaptive elision"
        );
    }

    #[test]
    fn adaptive_htm_lazy_counter_is_exact() {
        let sys = Arc::new(TmSystem::new(AlgoMode::AdaptiveHtmLazy));
        let lock = Arc::new(ElidableMutex::new("lazy"));
        let cell = Arc::new(TCell::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let sys = Arc::clone(&sys);
                let lock = Arc::clone(&lock);
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let th = sys.register();
                    for _ in 0..2_000 {
                        th.tx(&lock).run(|ctx| {
                            ctx.update(&*cell, |v| v + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            cell.load_direct(),
            8_000,
            "lost updates under lazy-subscription elision"
        );
    }

    #[test]
    fn adaptive_htm_lazy_exclusion_invariant() {
        use tle_htm::HtmConfig;
        // Same two-cell torn-state invariant as the eager test, but under
        // the commit-time subscription: the seqlock window check plus
        // doom-on-acquire must exclude lock-path holders just as the eager
        // lock-word subscription does.
        let sys = Arc::new(
            TmSystem::builder()
                .mode(AlgoMode::AdaptiveHtmLazy)
                .htm_config(HtmConfig {
                    event_prob: 0.05,
                    ..HtmConfig::default()
                })
                .build(),
        );
        let lock = Arc::new(ElidableMutex::new("lazy-excl"));
        let a = Arc::new(TCell::new(0u64));
        let b = Arc::new(TCell::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let sys = Arc::clone(&sys);
                let lock = Arc::clone(&lock);
                let a = Arc::clone(&a);
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let th = sys.register();
                    for _ in 0..3_000 {
                        th.tx(&lock).run(|ctx| {
                            let va = ctx.read(&*a)?;
                            let vb = ctx.read(&*b)?;
                            assert_eq!(va, vb, "torn state: lazy elision raced the lock path");
                            ctx.write(&*a, va + 1)?;
                            ctx.write(&*b, vb + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.load_direct(), 12_000);
        assert_eq!(b.load_direct(), 12_000);
        assert!(
            sys.stats.serial_fallbacks.get() > 0,
            "test wanted lock-path traffic but got none"
        );
    }

    #[test]
    fn adaptive_htm_lazy_condvar_works() {
        let sys = Arc::new(TmSystem::new(AlgoMode::AdaptiveHtmLazy));
        let lock = Arc::new(ElidableMutex::new("lazy-pc"));
        let cv = Arc::new(TxCondvar::new());
        let flag = Arc::new(TCell::new(false));
        let consumer = {
            let sys = Arc::clone(&sys);
            let lock = Arc::clone(&lock);
            let cv = Arc::clone(&cv);
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                let th = sys.register();
                th.tx(&lock).run(|ctx| {
                    if !ctx.read(&*flag)? {
                        return ctx.wait(&cv, None);
                    }
                    Ok(())
                });
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        let th = sys.register();
        th.tx(&lock).run(|ctx| {
            ctx.write(&*flag, true)?;
            ctx.signal(&cv)?;
            Ok(())
        });
        consumer.join().unwrap();
    }

    #[test]
    fn adaptive_htm_lazy_unsafe_op_takes_the_lock() {
        let sys = Arc::new(TmSystem::new(AlgoMode::AdaptiveHtmLazy));
        let th = sys.register();
        let lock = ElidableMutex::new("lazy-io");
        let cell = TCell::new(0u64);
        th.tx(&lock).run(|ctx| {
            ctx.unsafe_op()?;
            ctx.update(&cell, |v| v + 1)?;
            Ok(())
        });
        assert_eq!(cell.load_direct(), 1);
        assert!(sys.stats.serial_fallbacks.get() >= 1);
        // Lock path acquired and released once each: seqlock back to even.
        assert_eq!(lock.elision_seq() % 2, 0, "lazy seqlock parity corrupted");
    }

    #[test]
    fn adaptive_htm_lazy_unsafe_variant_single_threaded() {
        // The naive variant is still correct when nothing races it; its
        // hazards need an adversarial interleaving (demonstrated by the
        // checker, not here — stress would make this flaky by design).
        let sys = Arc::new(TmSystem::new(AlgoMode::AdaptiveHtmLazyUnsafe));
        let th = sys.register();
        let lock = ElidableMutex::new("lazy-naive");
        let cell = TCell::new(0u64);
        for _ in 0..100 {
            th.tx(&lock).run(|ctx| {
                ctx.update(&cell, |v| v + 1)?;
                Ok(())
            });
        }
        th.tx(&lock).run(|ctx| {
            ctx.unsafe_op()?;
            ctx.update(&cell, |v| v + 1)?;
            Ok(())
        });
        assert_eq!(cell.load_direct(), 101);
    }

    #[test]
    fn adaptive_htm_subscription_excludes_lock_path() {
        use tle_htm::HtmConfig;
        // Event-heavy hardware: many sections take the lock path, elided
        // and locked sections interleave constantly. The two-cell
        // invariant catches any mutual-exclusion breach.
        let sys = Arc::new(
            TmSystem::builder()
                .mode(AlgoMode::AdaptiveHtm)
                .htm_config(HtmConfig {
                    event_prob: 0.05,
                    ..HtmConfig::default()
                })
                .build(),
        );
        let lock = Arc::new(ElidableMutex::new("excl"));
        let a = Arc::new(TCell::new(0u64));
        let b = Arc::new(TCell::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let sys = Arc::clone(&sys);
                let lock = Arc::clone(&lock);
                let a = Arc::clone(&a);
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let th = sys.register();
                    for _ in 0..3_000 {
                        th.tx(&lock).run(|ctx| {
                            let va = ctx.read(&*a)?;
                            let vb = ctx.read(&*b)?;
                            assert_eq!(va, vb, "torn state: elision raced the lock path");
                            ctx.write(&*a, va + 1)?;
                            ctx.write(&*b, vb + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.load_direct(), 12_000);
        assert_eq!(b.load_direct(), 12_000);
        assert!(
            sys.stats.serial_fallbacks.get() > 0,
            "test wanted lock-path traffic but got none"
        );
    }

    #[test]
    fn adaptive_htm_sets_skip_credits_after_failures() {
        use tle_htm::HtmConfig;
        let sys = Arc::new(
            TmSystem::builder()
                .mode(AlgoMode::AdaptiveHtm)
                .htm_config(HtmConfig {
                    event_prob: 1.0, // every hardware attempt dies
                    ..HtmConfig::default()
                })
                .build(),
        );
        let th = sys.register();
        let lock = ElidableMutex::new("hopeless");
        let cell = TCell::new(0u64);
        th.tx(&lock).run(|ctx| {
            ctx.update(&cell, |v| v + 1)?;
            Ok(())
        });
        assert_eq!(cell.load_direct(), 1);
        assert!(
            lock.skip_credits() > 0,
            "failed elision must penalize the lock (glibc adaptation)"
        );
        // The next sections go straight to the lock path (credits consumed).
        let before = lock.skip_credits();
        th.tx(&lock).run(|ctx| {
            ctx.update(&cell, |v| v + 1)?;
            Ok(())
        });
        assert!(lock.skip_credits() < before, "skip credit not consumed");
    }

    #[test]
    fn adaptive_htm_condvar_works() {
        let sys = Arc::new(TmSystem::new(AlgoMode::AdaptiveHtm));
        let lock = Arc::new(ElidableMutex::new("pc"));
        let cv = Arc::new(TxCondvar::new());
        let flag = Arc::new(TCell::new(false));
        let consumer = {
            let sys = Arc::clone(&sys);
            let lock = Arc::clone(&lock);
            let cv = Arc::clone(&cv);
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                let th = sys.register();
                th.tx(&lock).run(|ctx| {
                    if !ctx.read(&*flag)? {
                        return ctx.wait(&cv, None);
                    }
                    Ok(())
                });
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        let th = sys.register();
        th.tx(&lock).run(|ctx| {
            ctx.write(&*flag, true)?;
            ctx.signal(&cv)?;
            Ok(())
        });
        consumer.join().unwrap();
    }

    #[test]
    fn adaptive_htm_unsafe_op_takes_the_lock() {
        let sys = Arc::new(TmSystem::new(AlgoMode::AdaptiveHtm));
        let th = sys.register();
        let lock = ElidableMutex::new("io");
        let cell = TCell::new(0u64);
        th.tx(&lock).run(|ctx| {
            ctx.unsafe_op()?;
            ctx.update(&cell, |v| v + 1)?;
            Ok(())
        });
        assert_eq!(cell.load_direct(), 1);
        assert!(sys.stats.serial_fallbacks.get() >= 1);
        assert!(
            !sys.gate.serial_held(),
            "adaptive mode must not use the global gate"
        );
    }

    #[test]
    fn adaptive_htm_timed_wait_expires_and_cancels() {
        let sys = Arc::new(TmSystem::new(AlgoMode::AdaptiveHtm));
        let th = sys.register();
        let lock = ElidableMutex::new("t");
        let cv = TxCondvar::new();
        let never = TCell::new(false);
        let mut wakes = 0u32;
        let t0 = std::time::Instant::now();
        let r = th.tx(&lock).run(|ctx| {
            if !ctx.read(&never)? {
                wakes += 1;
                if wakes > 2 {
                    return Ok(false);
                }
                return ctx
                    .wait(&cv, Some(std::time::Duration::from_millis(10)))
                    .map(|_| false);
            }
            Ok(true)
        });
        assert!(!r);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(15));
        // The timed-out waiters cancelled their ring entries under the
        // lock; a subsequent signal round-trip must still work (no stale
        // live waiters to misdeliver to).
        let flag = Arc::new(TCell::new(false));
        let ok = th.tx(&lock).run(|ctx| {
            ctx.write(&*flag, true)?;
            ctx.signal(&cv)?;
            Ok(true)
        });
        assert!(ok);
    }
}
