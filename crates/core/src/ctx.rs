//! [`TxCtx`] — the uniform critical-section handle.
//!
//! Application code is written once against this type; the variant behind
//! it decides whether an access is a plain load/store (baseline lock,
//! serial-irrevocable mode) or an instrumented transactional access (STM /
//! simulated HTM). This mirrors how the C++ TMTS lets one source body
//! compile into lock, STM and HTM flavours.

use crate::condvar::{TxCondvar, Waiter};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tle_base::history;
use tle_base::sched::{self, YieldPoint};
use tle_base::{AbortCause, TCell, TxVal};
use tle_htm::HtmTx;
use tle_stm::SoftTx;

/// Error type flowing out of transactional closures.
#[derive(Debug)]
pub enum TxError {
    /// The attempt must abort (conflict, capacity, explicit cancel, or an
    /// unsafe operation that needs serialization). The runner retries or
    /// falls back per policy.
    Abort(AbortCause),
    /// The closure requested a condition wait ([`TxCtx::wait`]): commit the
    /// transaction, block, and re-run the closure.
    Wait,
    /// The section's retry-time budget ([`crate::TxHints::with_deadline`])
    /// expired before a commit. Raised by the runner at retry-ladder
    /// decision points (never mid-attempt, and never once the section has
    /// entered serial or locked mode, whose effects cannot be undone);
    /// surfaces to callers through
    /// [`ThreadHandle::try_critical`](crate::ThreadHandle::try_critical).
    DeadlineExceeded,
    /// The lock's admission controller is in its shed step: the section was
    /// refused at dispatch so a hot lock fails fast instead of collapsing
    /// every caller. Surfaces through
    /// [`ThreadHandle::try_critical`](crate::ThreadHandle::try_critical).
    Overloaded,
}

impl From<AbortCause> for TxError {
    fn from(c: AbortCause) -> Self {
        TxError::Abort(c)
    }
}

pub(crate) enum CtxKind<'a> {
    /// Baseline: the real mutex is held; direct memory access.
    Locked {
        guard: Option<parking_lot::MutexGuard<'a, ()>>,
    },
    /// Software transaction (of the domain's selected [`tle_stm::StmAlgo`]).
    /// `spin_waits` selects the paper's "STM + Spin" degradation where
    /// waiting becomes polling.
    Stm { tx: SoftTx<'a>, spin_waits: bool },
    /// Simulated hardware transaction.
    Htm { tx: HtmTx<'a> },
    /// Serial-irrevocable mode: global exclusion is held; direct access.
    Serial,
}

/// A recorded wait request, consumed by the runner after the transaction
/// commits.
pub(crate) struct PendingWait<'a> {
    /// Private wakeup channel (None for baseline/spin waits, which do not
    /// enqueue).
    pub waiter: Option<Arc<Waiter>>,
    /// The extra `Arc` reference owned by the condvar queue entry; the
    /// runner reclaims it if the enqueue transaction fails to commit.
    pub raw: *const Waiter,
    pub cv: &'a TxCondvar,
    pub timeout: Option<Duration>,
}

/// The critical-section handle passed to closures run by
/// [`ThreadHandle::critical`](crate::ThreadHandle::critical).
pub struct TxCtx<'a> {
    pub(crate) kind: CtxKind<'a>,
    pub(crate) defers: Vec<Box<dyn FnOnce() + Send + 'static>>,
    pub(crate) pending_wait: Option<PendingWait<'a>>,
    /// Absolute expiry of the section's retry-time budget
    /// ([`crate::TxHints::with_deadline`]); `None` when unbounded.
    pub(crate) deadline: Option<Instant>,
    /// Set by the async runner: waits must produce a pollable registration
    /// instead of relying on OS parking. Only the baseline path behaves
    /// differently (it enqueues into the transactional ring — safe under
    /// the held mutex — rather than using the native condvar channel).
    pub(crate) async_waits: bool,
}

impl<'a> TxCtx<'a> {
    pub(crate) fn new(kind: CtxKind<'a>) -> Self {
        TxCtx {
            kind,
            defers: Vec::new(),
            pending_wait: None,
            deadline: None,
            async_waits: false,
        }
    }

    /// Time left in the section's retry budget; `None` when unbounded,
    /// `Some(ZERO)` once expired.
    pub fn remaining_budget(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Clamp a requested wait timeout to the remaining retry budget, so a
    /// parked waiter cannot outsleep its transaction's deadline.
    fn clamp_to_deadline(&self, timeout: Option<Duration>) -> Option<Duration> {
        match (timeout, self.remaining_budget()) {
            (t, None) => t,
            (None, Some(rem)) => Some(rem),
            (Some(t), Some(rem)) => Some(t.min(rem)),
        }
    }

    /// Whether the section is running as a transaction (vs. under a real
    /// lock or global serialization).
    pub fn is_transactional(&self) -> bool {
        matches!(self.kind, CtxKind::Stm { .. } | CtxKind::Htm { .. })
    }

    /// Raw read used by both the public API and the condvar machinery.
    pub(crate) fn mem_read<T: TxVal>(&mut self, c: &TCell<T>) -> Result<T, AbortCause> {
        match &mut self.kind {
            CtxKind::Locked { .. } | CtxKind::Serial => {
                // Interleaving point: on real hardware a lock/serial
                // section's plain loads race freely with everything a
                // broken elision lets run concurrently, so the explorer
                // must be able to split a serial section between accesses
                // (the lazy-subscription hazards are invisible otherwise).
                sched::yield_point(YieldPoint::MemStore);
                let v = c.load_direct();
                history::read(c.addr(), v.to_word());
                Ok(v)
            }
            CtxKind::Stm { tx, .. } => tx.read(c),
            CtxKind::Htm { tx } => tx.read(c),
        }
    }

    /// Raw write used by both the public API and the condvar machinery.
    pub(crate) fn mem_write<T: TxVal>(&mut self, c: &TCell<T>, v: T) -> Result<(), AbortCause> {
        match &mut self.kind {
            CtxKind::Locked { .. } | CtxKind::Serial => {
                // Interleaving point: see `mem_read`.
                sched::yield_point(YieldPoint::MemStore);
                c.store_direct(v);
                history::write(c.addr(), v.to_word());
                Ok(())
            }
            CtxKind::Stm { tx, .. } => tx.write(c, v),
            CtxKind::Htm { tx } => tx.write(c, v),
        }
    }

    /// Read a transactional cell.
    #[inline]
    pub fn read<T: TxVal>(&mut self, c: &TCell<T>) -> Result<T, TxError> {
        self.mem_read(c).map_err(TxError::from)
    }

    /// Write a transactional cell.
    #[inline]
    pub fn write<T: TxVal>(&mut self, c: &TCell<T>, v: T) -> Result<(), TxError> {
        self.mem_write(c, v).map_err(TxError::from)
    }

    /// Read-modify-write convenience.
    #[inline]
    pub fn update<T: TxVal>(&mut self, c: &TCell<T>, f: impl FnOnce(T) -> T) -> Result<T, TxError> {
        let old = self.read(c)?;
        let new = f(old);
        self.write(c, new)?;
        Ok(new)
    }

    /// Defer an action to run after the critical section completes
    /// (post-commit for transactions, post-unlock for the baseline). This is
    /// the mechanism the paper uses for logging-under-lock (§VI-c): the
    /// effect is irrevocable, so it must not run inside an abortable
    /// attempt.
    pub fn defer(&mut self, f: impl FnOnce() + Send + 'static) {
        self.defers.push(Box::new(f));
    }

    /// The paper's `TM_NoQuiesce` (§IV-B): assert this transaction does not
    /// privatize, skipping the post-commit quiescence drain. No-op outside
    /// STM (HTM never quiesces; baseline/serial have no drain), and ignored
    /// unless the system's quiescence policy is `Selective`.
    pub fn no_quiesce(&mut self) {
        if let CtxKind::Stm { tx, .. } = &mut self.kind {
            tx.no_quiesce();
        }
    }

    /// Declare that this transaction frees memory; forces quiescence even
    /// under `TM_NoQuiesce` (allocator-mandated drain, paper §IV-B).
    pub fn will_free_memory(&mut self) {
        if let CtxKind::Stm { tx, .. } = &mut self.kind {
            tx.will_free_memory();
        }
    }

    /// Mark that the section performs an operation that cannot run
    /// speculatively (I/O, syscall). Under a real lock or in serial mode
    /// this is a no-op; in a transaction it aborts with
    /// [`AbortCause::Unsafe`] and the runner re-executes the section in
    /// serial-irrevocable mode.
    pub fn unsafe_op(&mut self) -> Result<(), TxError> {
        match &mut self.kind {
            CtxKind::Locked { .. } | CtxKind::Serial => Ok(()),
            CtxKind::Stm { .. } => Err(TxError::Abort(AbortCause::Unsafe)),
            CtxKind::Htm { tx } => {
                tx.unsafe_op()?;
                Ok(())
            }
        }
    }

    /// Explicitly cancel the transaction (the TMTS "cancel" exception).
    /// Not available under the baseline or in serial mode (effects cannot
    /// be undone there) — the runner panics if it receives this outside a
    /// transaction.
    pub fn cancel(&mut self) -> TxError {
        TxError::Abort(AbortCause::Explicit)
    }

    /// Wait on `cv` until signalled (or until `timeout`, if given).
    ///
    /// Always returns `Err(TxError::Wait)`, which the closure must
    /// propagate; the runner then commits the transaction (making the
    /// waiter registration visible atomically with the predicate check —
    /// Wang's construction, no lost wakeups), blocks, and re-runs the
    /// closure. Under `StmSpin` the registration is skipped and the closure
    /// is simply re-run — polling.
    /// When the section carries a deadline hint the effective timeout is
    /// clamped to the remaining retry budget, whichever is sooner — a wait
    /// can never sleep past its transaction's deadline.
    pub fn wait(&mut self, cv: &'a TxCondvar, timeout: Option<Duration>) -> Result<(), TxError> {
        let timeout = self.clamp_to_deadline(timeout);
        // Async baseline sections cannot use the native condvar channel
        // (parking would stall an executor worker); they enqueue into the
        // transactional ring instead — direct ring access is safe under the
        // held mutex, exactly as in [`signal`](Self::signal) — and the
        // runner awaits the waiter's waker.
        let ring_wait = match &self.kind {
            CtxKind::Locked { .. } => self.async_waits,
            CtxKind::Stm {
                spin_waits: true, ..
            } => false,
            CtxKind::Stm { .. } | CtxKind::Htm { .. } | CtxKind::Serial => true,
        };
        match &mut self.kind {
            _ if !ring_wait => {
                self.pending_wait = Some(PendingWait {
                    waiter: None,
                    raw: std::ptr::null(),
                    cv,
                    timeout,
                });
                Err(TxError::Wait)
            }
            CtxKind::Locked { .. }
            | CtxKind::Stm { .. }
            | CtxKind::Htm { .. }
            | CtxKind::Serial => {
                let waiter = Arc::new(Waiter::new());
                let raw = Arc::into_raw(Arc::clone(&waiter));
                if let Err(cause) = cv.enqueue(self, raw) {
                    // The enqueue writes rolled back with the attempt;
                    // reclaim the queue's reference here.
                    // SAFETY: `raw` came from `Arc::into_raw` above and the
                    // failed enqueue published it nowhere.
                    unsafe { drop(Arc::from_raw(raw)) };
                    return Err(TxError::Abort(cause));
                }
                self.pending_wait = Some(PendingWait {
                    waiter: Some(waiter),
                    raw,
                    cv,
                    timeout,
                });
                Err(TxError::Wait)
            }
        }
    }

    /// Wake one waiter of `cv`. Under transactions the wakeup is a deferred
    /// action delivered at commit (so an aborted signaller wakes no one).
    ///
    /// Per-lock mode flips mean the waiter population can be mixed: threads
    /// that registered transactionally in the ring before a flip to
    /// baseline, and threads parked on the native channel before a flip
    /// away from it. Every arm therefore services both populations; the
    /// worst case is an extra wakeup, which waiters absorb by re-checking
    /// their predicate.
    pub fn signal(&mut self, cv: &TxCondvar) -> Result<(), TxError> {
        match &mut self.kind {
            CtxKind::Locked { .. } => {
                // Direct ring access is safe here: the raw mutex is held,
                // and the flip that made this lock baseline excluded (and
                // doomed) all transactional ring users first.
                if let Some(raw) = cv.dequeue(self)? {
                    self.defer_notify(raw);
                }
                cv.notify_native_one();
                Ok(())
            }
            _ => {
                if let Some(raw) = cv.dequeue(self)? {
                    self.defer_notify(raw);
                } else if cv.has_native_waiters() {
                    cv.notify_native_all();
                }
                Ok(())
            }
        }
    }

    /// Wake all waiters of `cv` (both the transactional ring and any
    /// natively parked pre-flip waiters; see [`signal`](Self::signal)).
    pub fn broadcast(&mut self, cv: &TxCondvar) -> Result<(), TxError> {
        match &mut self.kind {
            CtxKind::Locked { .. } => {
                while let Some(raw) = cv.dequeue(self)? {
                    self.defer_notify(raw);
                }
                cv.notify_native_all();
                Ok(())
            }
            _ => {
                while let Some(raw) = cv.dequeue(self)? {
                    self.defer_notify(raw);
                }
                if cv.has_native_waiters() {
                    cv.notify_native_all();
                }
                Ok(())
            }
        }
    }

    fn defer_notify(&mut self, raw: *const Waiter) {
        // Raw pointers are not Send; wrap for the deferred closure. (Edition
        // 2021 closures capture disjoint fields, so expose the pointer via a
        // method to keep the whole wrapper captured.)
        struct SendPtr(*const Waiter);
        unsafe impl Send for SendPtr {}
        impl SendPtr {
            fn get(&self) -> *const Waiter {
                self.0
            }
        }
        let p = SendPtr(raw);
        self.defers.push(Box::new(move || {
            // SAFETY: the pointer is the queue-owned Arc reference produced
            // by `wait`; dequeue transferred ownership to this action.
            let w = unsafe { Arc::from_raw(p.get()) };
            w.notify();
        }));
    }
}
