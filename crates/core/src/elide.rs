//! The elidable mutex.
//!
//! Under [`AlgoMode::Baseline`](crate::AlgoMode::Baseline) an
//! `ElidableMutex` is a real mutex; under every TM mode the lock identity is
//! *erased* (paper §IV-A) and the object is only metadata — all elided
//! critical sections, regardless of which lock they named, become
//! transactions over the single shared TM domain. The paper points out the
//! cost of this erasure: quiescence and serialization become global even
//! when the original program used disjoint locks.
//!
//! Each lock additionally carries a [`LockDomain`]: per-lock policy state
//! (mode override, retry budgets, `TM_NoQuiesce` opt-in) plus a sliding
//! window of per-cause outcomes. The adaptive controller
//! ([`TmSystem`](crate::TmSystem)) holds a weak reference to the shared
//! inner state, which is why the mutex is an `Arc` handle internally — a
//! lock can be adopted, dropped by the application, and pruned by the
//! controller without lifetime gymnastics.

use crate::domain::{AdmissionStep, LockDomain};
use crate::system::AlgoMode;
use parking_lot::{Mutex, MutexGuard};
use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use tle_base::{TCell, WindowSnapshot};

/// The shared state behind an [`ElidableMutex`] handle.
pub(crate) struct LockInner {
    raw: Mutex<()>,
    name: Cow<'static, str>,
    held: TCell<bool>,
    /// Acquisition seqlock for the lazy-subscription modes: bumped on
    /// every lock-path acquire **and** release, so even = free, odd =
    /// held. A lazily subscribed transaction captures the value at begin
    /// and re-checks it immediately before its commit point; an unchanged
    /// even value proves the lock was free for the whole speculation
    /// window. Eager modes never touch it.
    seq: AtomicU64,
    skip: AtomicU32,
    poisoned: AtomicBool,
    domain: LockDomain,
}

impl LockInner {
    /// The underlying mutex (baseline mode and mode-flip exclusion).
    pub(crate) fn raw(&self) -> &Mutex<()> {
        &self.raw
    }

    /// The transactionally subscribed lock word (adaptive elision).
    pub(crate) fn held_cell(&self) -> &TCell<bool> {
        &self.held
    }

    /// The per-lock policy domain.
    pub(crate) fn domain(&self) -> &LockDomain {
        &self.domain
    }

    /// The diagnostic name.
    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    /// Current acquisition-seqlock value (lazy-subscription window proof).
    pub(crate) fn elision_seq(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Bump the acquisition seqlock (lazy lock path, acquire and release).
    pub(crate) fn seq_bump(&self) {
        self.seq.fetch_add(1, Ordering::SeqCst);
    }
}

/// A lock that can be elided by the TLE runtime.
///
/// The handle is a cheap `Arc` clone over shared lock state, so dynamically
/// created locks (sharded/keyed lock tables) can hand copies to worker
/// threads and to the adaptive controller alike.
///
/// Under [`AlgoMode::AdaptiveHtm`](crate::AlgoMode::AdaptiveHtm) the lock
/// additionally carries glibc-style elision state: a transactionally
/// readable **subscription word** (`held`) that elided sections read so a
/// real acquisition aborts them, and an adaptive **skip counter** that
/// routes the next few acquisitions straight to the lock after an elision
/// failure (glibc's `skip_lock_internal_abort`).
#[derive(Clone)]
pub struct ElidableMutex {
    inner: Arc<LockInner>,
}

impl ElidableMutex {
    /// Create a named lock (the name appears in diagnostics only). Accepts
    /// both `&'static str` literals and runtime `String`s, so keyed lock
    /// tables can name their shards.
    pub fn new(name: impl Into<Cow<'static, str>>) -> Self {
        ElidableMutex {
            inner: Arc::new(LockInner {
                raw: Mutex::new(()),
                name: name.into(),
                held: TCell::new(false),
                seq: AtomicU64::new(0),
                skip: AtomicU32::new(0),
                poisoned: AtomicBool::new(false),
                domain: LockDomain::new(),
            }),
        }
    }

    /// The diagnostic name.
    pub fn name(&self) -> &str {
        self.inner.name()
    }

    /// The shared inner state (controller adoption).
    pub(crate) fn inner(&self) -> &Arc<LockInner> {
        &self.inner
    }

    /// The underlying mutex (baseline mode only).
    pub(crate) fn raw(&self) -> &Mutex<()> {
        self.inner.raw()
    }

    /// The transactionally subscribed lock word (adaptive elision).
    pub(crate) fn held_cell(&self) -> &TCell<bool> {
        self.inner.held_cell()
    }

    /// The per-lock policy domain.
    pub(crate) fn domain(&self) -> &LockDomain {
        &self.inner.domain
    }

    /// Current acquisition-seqlock value (lazy-subscription modes; even =
    /// free, odd = held).
    pub(crate) fn elision_seq(&self) -> u64 {
        self.inner.elision_seq()
    }

    /// Bump the acquisition seqlock (lazy lock path only).
    pub(crate) fn seq_bump(&self) {
        self.inner.seq_bump()
    }

    /// The mode this lock runs under, given the system's global mode:
    /// the per-lock override when one is installed, else `global`.
    pub fn resolved_mode(&self, global: AlgoMode) -> AlgoMode {
        self.domain().resolved(global)
    }

    /// The per-lock mode override, if any (set by the adaptive controller
    /// or [`TmSystem::set_lock_mode`](crate::TmSystem::set_lock_mode)).
    pub fn mode_override(&self) -> Option<AlgoMode> {
        self.domain().override_mode()
    }

    /// Whether this lock opted into per-lock `TM_NoQuiesce` (see
    /// [`TmSystem::set_lock_no_quiesce`](crate::TmSystem::set_lock_no_quiesce)).
    pub fn is_no_quiesce(&self) -> bool {
        self.domain().no_quiesce()
    }

    /// Override the retry budgets for sections under this lock (`None` =
    /// inherit the system [`TlePolicy`](crate::TlePolicy)). Per-section
    /// [`TxHints`](crate::TxHints) still take precedence over these.
    pub fn set_retry_budgets(&self, htm: Option<u32>, stm: Option<u32>) {
        self.domain().set_retry_budgets(htm, stm);
    }

    /// Point-in-time view of this lock's sliding outcome window.
    pub fn window_snapshot(&self) -> WindowSnapshot {
        self.domain().window.snapshot()
    }

    /// Lifetime count of mode switches applied to this lock.
    pub fn switches(&self) -> u64 {
        self.domain().switch_count()
    }

    /// Where this lock currently sits on the admission controller's
    /// degradation ladder (elide → serialize → shed). Always
    /// [`AdmissionStep::Elide`] unless a
    /// [`TmSystem`](crate::TmSystem) built with admission control adopted
    /// the lock and stepped it down.
    pub fn admission_step(&self) -> AdmissionStep {
        self.domain().admission_step()
    }

    /// Highest admission step this lock ever reached (the ladder may have
    /// recovered since; this records that it was there).
    pub fn admission_high_water(&self) -> AdmissionStep {
        self.domain().admission_high_water()
    }

    /// Sections currently dispatched under this lock (queued plus
    /// executing) — the overload signal the admission controller's
    /// shed/recover thresholds compare against.
    pub fn queue_depth(&self) -> u64 {
        self.domain().queue_depth()
    }

    /// Whether any [`TmSystem`](crate::TmSystem) adopted this lock into its
    /// adaptive controller (see [`TmSystem::adopt_lock`](crate::TmSystem::adopt_lock)).
    pub fn is_adopted(&self) -> bool {
        self.domain().adopted()
    }

    /// Test hook: replace the window contents with a synthetic history so
    /// controller behaviour can be pinned without generating real workload.
    #[doc(hidden)]
    pub fn synthesize_window(&self, commits: u64, conflict: u64, capacity: u64, serial: u64) {
        let w = &self.domain().window;
        w.reset();
        for _ in 0..commits {
            w.record_commit(0);
        }
        for _ in 0..conflict {
            w.record_abort(tle_base::AbortCause::Conflict);
        }
        for _ in 0..capacity {
            w.record_abort(tle_base::AbortCause::Capacity);
        }
        for _ in 0..serial {
            w.record_serial();
        }
    }

    /// Acquire the raw mutex guard (mode-flip exclusion protocol).
    pub(crate) fn raw_lock(&self) -> MutexGuard<'_, ()> {
        self.inner.raw.lock()
    }

    /// Whether the adaptive policy says to skip elision this time; consumes
    /// one skip credit.
    pub(crate) fn consume_skip(&self) -> bool {
        let skip = &self.inner.skip;
        let mut cur = skip.load(Ordering::Relaxed);
        while cur > 0 {
            match skip.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(c) => cur = c,
            }
        }
        false
    }

    /// Penalize elision on this lock for the next `n` acquisitions
    /// (glibc's adaptation after an internal abort).
    pub(crate) fn set_skip(&self, n: u32) {
        self.inner.skip.store(n, Ordering::Relaxed);
    }

    /// Current skip credits (diagnostics/tests).
    pub fn skip_credits(&self) -> u32 {
        self.inner.skip.load(Ordering::Relaxed)
    }

    /// Mark the lock poisoned: a critical section guarded by it panicked.
    /// The transactional machinery already rolled the panicking attempt
    /// back (undo log, orecs, gate token are all released by unwinding),
    /// so memory is consistent — but *application* invariants spanning
    /// multiple sections may not be. Poisoning is therefore advisory, like
    /// `parking_lot`'s non-poisoning mutexes plus an inspectable flag:
    /// other threads keep running, and callers that care can check.
    pub(crate) fn poison(&self) {
        self.inner.poisoned.store(true, Ordering::Release);
    }

    /// Whether a critical section guarded by this lock ever panicked.
    pub fn is_poisoned(&self) -> bool {
        self.inner.poisoned.load(Ordering::Acquire)
    }

    /// Reset the poison flag after the application restored its invariants.
    pub fn clear_poison(&self) {
        self.inner.poisoned.store(false, Ordering::Release);
    }
}

impl std::fmt::Debug for ElidableMutex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElidableMutex")
            .field("name", &self.name())
            .field("locked", &self.inner.raw.is_locked())
            .field("poisoned", &self.is_poisoned())
            .field("mode_override", &self.mode_override())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_and_debug() {
        let m = ElidableMutex::new("queue");
        assert_eq!(m.name(), "queue");
        let s = format!("{m:?}");
        assert!(s.contains("queue"));
    }

    #[test]
    fn dynamic_names_are_accepted() {
        let shards: Vec<ElidableMutex> = (0..4)
            .map(|i| ElidableMutex::new(format!("shard-{i}")))
            .collect();
        assert_eq!(shards[3].name(), "shard-3");
    }

    #[test]
    fn clones_share_state() {
        let a = ElidableMutex::new("shared");
        let b = a.clone();
        a.poison();
        assert!(b.is_poisoned());
        b.clear_poison();
        assert!(!a.is_poisoned());
        let g = a.raw().lock();
        assert!(b.raw().try_lock().is_none());
        drop(g);
    }

    #[test]
    fn poison_flag_roundtrip() {
        let m = ElidableMutex::new("p");
        assert!(!m.is_poisoned());
        m.poison();
        assert!(m.is_poisoned());
        m.clear_poison();
        assert!(!m.is_poisoned());
    }

    #[test]
    fn raw_mutex_excludes() {
        let m = ElidableMutex::new("x");
        let g = m.raw().lock();
        assert!(m.raw().try_lock().is_none());
        drop(g);
        assert!(m.raw().try_lock().is_some());
    }

    #[test]
    fn domain_defaults_to_inherit() {
        let m = ElidableMutex::new("d");
        assert_eq!(m.mode_override(), None);
        assert_eq!(m.resolved_mode(AlgoMode::HtmCondvar), AlgoMode::HtmCondvar);
        assert!(!m.is_no_quiesce());
        assert_eq!(m.switches(), 0);
    }

    #[test]
    fn synthesized_window_is_visible() {
        let m = ElidableMutex::new("w");
        m.synthesize_window(10, 2, 3, 1);
        let s = m.window_snapshot();
        assert_eq!(s.commits, 10);
        assert_eq!(s.conflict_aborts, 2);
        assert_eq!(s.capacity_aborts, 3);
        assert_eq!(s.serial, 1);
    }
}
