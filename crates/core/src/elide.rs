//! The elidable mutex.
//!
//! Under [`AlgoMode::Baseline`](crate::AlgoMode::Baseline) an
//! `ElidableMutex` is a real mutex; under every TM mode the lock identity is
//! *erased* (paper §IV-A) and the object is only metadata — all elided
//! critical sections, regardless of which lock they named, become
//! transactions over the single shared TM domain. The paper points out the
//! cost of this erasure: quiescence and serialization become global even
//! when the original program used disjoint locks.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use tle_base::TCell;

/// A lock that can be elided by the TLE runtime.
///
/// Under [`AlgoMode::AdaptiveHtm`](crate::AlgoMode::AdaptiveHtm) the lock
/// additionally carries glibc-style elision state: a transactionally
/// readable **subscription word** (`held`) that elided sections read so a
/// real acquisition aborts them, and an adaptive **skip counter** that
/// routes the next few acquisitions straight to the lock after an elision
/// failure (glibc's `skip_lock_internal_abort`).
pub struct ElidableMutex {
    raw: Mutex<()>,
    name: &'static str,
    held: TCell<bool>,
    skip: AtomicU32,
    poisoned: AtomicBool,
}

impl ElidableMutex {
    /// Create a named lock (the name appears in diagnostics only).
    pub fn new(name: &'static str) -> Self {
        ElidableMutex {
            raw: Mutex::new(()),
            name,
            held: TCell::new(false),
            skip: AtomicU32::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// The diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The underlying mutex (baseline mode only).
    pub(crate) fn raw(&self) -> &Mutex<()> {
        &self.raw
    }

    /// The transactionally subscribed lock word (adaptive elision).
    pub(crate) fn held_cell(&self) -> &TCell<bool> {
        &self.held
    }

    /// Whether the adaptive policy says to skip elision this time; consumes
    /// one skip credit.
    pub(crate) fn consume_skip(&self) -> bool {
        let mut cur = self.skip.load(Ordering::Relaxed);
        while cur > 0 {
            match self.skip.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(c) => cur = c,
            }
        }
        false
    }

    /// Penalize elision on this lock for the next `n` acquisitions
    /// (glibc's adaptation after an internal abort).
    pub(crate) fn set_skip(&self, n: u32) {
        self.skip.store(n, Ordering::Relaxed);
    }

    /// Current skip credits (diagnostics/tests).
    pub fn skip_credits(&self) -> u32 {
        self.skip.load(Ordering::Relaxed)
    }

    /// Mark the lock poisoned: a critical section guarded by it panicked.
    /// The transactional machinery already rolled the panicking attempt
    /// back (undo log, orecs, gate token are all released by unwinding),
    /// so memory is consistent — but *application* invariants spanning
    /// multiple sections may not be. Poisoning is therefore advisory, like
    /// `parking_lot`'s non-poisoning mutexes plus an inspectable flag:
    /// other threads keep running, and callers that care can check.
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// Whether a critical section guarded by this lock ever panicked.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Reset the poison flag after the application restored its invariants.
    pub fn clear_poison(&self) {
        self.poisoned.store(false, Ordering::Release);
    }
}

impl std::fmt::Debug for ElidableMutex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElidableMutex")
            .field("name", &self.name)
            .field("locked", &self.raw.is_locked())
            .field("poisoned", &self.is_poisoned())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_and_debug() {
        let m = ElidableMutex::new("queue");
        assert_eq!(m.name(), "queue");
        let s = format!("{m:?}");
        assert!(s.contains("queue"));
    }

    #[test]
    fn poison_flag_roundtrip() {
        let m = ElidableMutex::new("p");
        assert!(!m.is_poisoned());
        m.poison();
        assert!(m.is_poisoned());
        m.clear_poison();
        assert!(!m.is_poisoned());
    }

    #[test]
    fn raw_mutex_excludes() {
        let m = ElidableMutex::new("x");
        let g = m.raw().lock();
        assert!(m.raw().try_lock().is_none());
        drop(g);
        assert!(m.raw().try_lock().is_some());
    }
}
