//! Async mirror of the TLE execution engine (`runner`): the same
//! attempt → retry → backoff → serialize ladder, with every blocking edge
//! turned into a suspension point.
//!
//! ## Structure: synchronous attempts, asynchronous waits
//!
//! An atomic block never suspends mid-speculation: each *attempt* (begin →
//! closure → commit) is a plain synchronous call that starts and finishes
//! inside one `poll`, exactly as in the sync runner — suspending with orecs
//! or line claims held would pin them across arbitrary scheduling delays
//! (`tle-lint` rule R6 rejects `.await` inside atomic-block closures for
//! the same reason). Only the edges where the sync runner would block an OS
//! thread become `.await`s:
//!
//! - serial-gate entry (`Gate::enter_concurrent_async` /
//!   `Gate::enter_serial_async`),
//! - condvar blocks (`Waiter::poll_signaled` plus executor timers for
//!   timed waits),
//! - post-commit quiescence drains (`StmTx::commit_publish` splits the
//!   commit; the returned ticket is polled one sweep per
//!   `StmGlobal::quiesce_pass`),
//! - inter-attempt backoff, lock-word spins, and HTM invalidation waits
//!   (`HtmGlobal::try_invalidate` + executor yields).
//!
//! This split is also what makes the returned futures `Send` without extra
//! locking: no transaction, context, or lock guard is ever live across an
//! `.await`.
//!
//! ## Transient slot claims
//!
//! Async sections do **not** run on the handle's own STM/HTM slots: one
//! [`ThreadHandle`] may serve thousands of concurrent logical sessions, and
//! two simultaneous transactions publishing through one slot would corrupt
//! the quiescence protocol (and the HTM slot state outright). Each attempt
//! instead claims a fresh slot pair from the bounded registries
//! ([`SlotClaim`]) and releases it as soon as the attempt — plus its
//! quiescence drain, which scans by slot index — completes. Claims never
//! span condvar waits, so parked sessions cannot starve runnable ones out
//! of slots; registry exhaustion backpressures with a scheduler yield.
//!
//! ## Baseline mode
//!
//! The baseline path acquires the real mutex with `try_lock` + yield (an
//! executor worker must never park in the OS — `tle_base::park` asserts
//! this under the waker backend), and waits enqueue into the transactional
//! ring under the held mutex instead of using the native condvar channel
//! (see `TxCtx::wait`); signallers already service the ring in every mode.
//!
//! ## Cancellation
//!
//! Dropping one of these futures between a committed wait registration and
//! its wakeup used to abandon the ring entry (a later signal could then be
//! consumed by the ghost waiter). Ring entries now self-cancel:
//! [`WaitEntryGuard`] removes the entry synchronously when the suspended
//! wait is dropped, so a later signal always reaches a live waiter. See
//! DESIGN.md §16.

use crate::condvar::{TxCondvar, Waiter};
use crate::ctx::{CtxKind, PendingWait, TxCtx, TxError};
use crate::domain::AdmissionStep;
use crate::elide::ElidableMutex;
use crate::runner::{self, Budget, NestGuard, PoisonOnPanic, QueueExitOnDrop};
use crate::system::{AlgoMode, ThreadHandle, TmSystem, TxHints};
use std::sync::Arc;
use std::task::Poll;
use std::time::{Duration, Instant};
use tle_base::exec;
use tle_base::fault;
use tle_base::history;
use tle_base::mutant::{self, Mutant};
use tle_base::sched::{self, YieldPoint};
use tle_base::trace::{self, TraceKind, TxMode};
use tle_base::AbortCause;
use tle_stm::QuiesceTicket;

/// What a per-mode async runner produced (mirror of `runner::Outcome`).
enum Outcome<R> {
    Done(R),
    Redispatch,
    Expired(TxError),
}

/// Mirror of `runner::SerialOutcome`.
enum SerialOutcome<R> {
    Done(R),
    Retry,
    Redispatch,
}

/// Deferred post-commit actions carried out of a synchronous attempt.
type Defers = Vec<Box<dyn FnOnce() + Send + 'static>>;

/// A ring-entry pointer carried across `.await`s. The pointee is kept alive
/// by the queue-owned `Arc` reference (see `TxCtx::wait`), and cancel-time
/// ownership transfer happens inside synchronous blocks only.
#[derive(Clone, Copy)]
struct RawWaiter(*const Waiter);
// SAFETY: the pointer is an `Arc`-derived reference to a `Waiter`
// (`Send + Sync`); this wrapper only moves the *address* between workers,
// never shares unsynchronized state.
unsafe impl Send for RawWaiter {}
unsafe impl Sync for RawWaiter {}

/// A committed wait registration, in `Send` form (the async analogue of
/// `PendingWait`).
struct AsyncWait<'a> {
    waiter: Option<Arc<Waiter>>,
    raw: RawWaiter,
    cv: &'a TxCondvar,
    timeout: Option<Duration>,
}

impl<'a> AsyncWait<'a> {
    fn from_pending(pw: PendingWait<'a>) -> Self {
        AsyncWait {
            waiter: pw.waiter,
            raw: RawWaiter(pw.raw),
            cv: pw.cv,
            timeout: pw.timeout,
        }
    }
}

/// A transient STM + HTM slot pair claimed for one attempt; both slots are
/// returned to the registries on drop.
struct SlotClaim<'s> {
    sys: &'s TmSystem,
    stm: usize,
    htm: usize,
}

impl Drop for SlotClaim<'_> {
    fn drop(&mut self) {
        self.sys.stm.slots.unregister_raw(self.stm);
        self.sys.htm.slots.unregister_raw(self.htm);
    }
}

/// Claim a slot pair, yielding to the executor while the registries are
/// exhausted. Terminates: slots are held only across synchronous attempts
/// and their drains, never across condvar waits, so holders always release
/// in bounded time.
async fn claim_slots(sys: &TmSystem) -> SlotClaim<'_> {
    loop {
        if let Some(stm) = sys.stm.slots.register_raw() {
            match sys.htm.slots.register_raw() {
                Some(htm) => return SlotClaim { sys, stm, htm },
                None => sys.stm.slots.unregister_raw(stm),
            }
        }
        exec::yield_now().await;
    }
}

/// What one synchronous transactional attempt produced.
enum TxStep<'a, R> {
    /// Committed with a result; drain the ticket (if any), run defers, done.
    Done(R, Option<QuiesceTicket>, Defers),
    /// Committed a wait registration; drain, run defers, park, re-run.
    Wait(AsyncWait<'a>, Option<QuiesceTicket>, Defers),
    /// The attempt aborted; retry with backoff.
    Abort(AbortCause),
    /// Unsafe operation: serialize.
    Unsafe,
    /// The closure manufactured a runner-level error.
    RunnerErr(TxError),
}

/// What one synchronous serial/locked body produced.
enum SerialStep<'a, R> {
    Done(R, Defers),
    Wait(AsyncWait<'a>, Defers),
}

pub(crate) async fn run_async<'a, R, F>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    hints: TxHints,
    mut f: F,
    fallible: bool,
) -> Result<R, TxError>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    let f = &mut f;
    fault::tick();
    // Same unwind guards as the sync entry (`runner::run_inner`): poison
    // the lock if the section panics, and keep the queue-depth gauge
    // balanced on every exit path — including the future being dropped.
    let _poison = PoisonOnPanic(lock);
    lock.domain().enter_queue();
    let _dequeue = QueueExitOnDrop(lock);
    let budget = Budget {
        deadline: hints.deadline.map(|d| Instant::now() + d),
        fallible,
    };
    loop {
        let epoch = lock.domain().epoch();
        let mode = lock.resolved_mode(th.sys.mode());
        // Admission ladder (see `runner::run_inner` for the rationale).
        if mode.is_transactional() && !mode.is_glibc_family() && th.sys.admission_enabled() {
            let step = lock.domain().admission_step();
            if step != AdmissionStep::Elide {
                if fallible && step == AdmissionStep::Shed {
                    let depth = lock.domain().queue_depth();
                    th.sys.stats.sheds.inc(th.stm_slot);
                    trace::emit(TraceKind::Shed, TxMode::Serial, None, depth);
                    return Err(TxError::Overloaded);
                }
                trace::emit(TraceKind::Fallback, TxMode::Serial, None, 0);
                match run_serial_async(th, lock, epoch, budget.deadline, f).await {
                    SerialOutcome::Done(r) => return Ok(r),
                    SerialOutcome::Retry | SerialOutcome::Redispatch => continue,
                }
            }
        }
        if budget.fallible && budget.expired() {
            th.sys.stats.deadline_exceeded.inc(th.stm_slot);
            trace::emit(TraceKind::DeadlineExceeded, TxMode::Serial, None, 0);
            return Err(TxError::DeadlineExceeded);
        }
        let outcome = match mode {
            AlgoMode::Baseline => run_locked_async(th, lock, epoch, budget.deadline, f).await,
            AlgoMode::StmSpin => run_stm_async(th, lock, epoch, hints, budget, f, true).await,
            AlgoMode::StmCondvar | AlgoMode::StmCondvarNoQuiesce => {
                run_stm_async(th, lock, epoch, hints, budget, f, false).await
            }
            AlgoMode::HtmCondvar => run_htm_async(th, lock, epoch, hints, budget, f).await,
            AlgoMode::AdaptiveHtm | AlgoMode::AdaptiveHtmLazy => {
                run_adaptive_async(th, lock, epoch, hints, budget, f, mode).await
            }
            #[cfg(any(test, debug_assertions, feature = "unsafe-modes"))]
            AlgoMode::AdaptiveHtmLazyUnsafe => {
                run_adaptive_async(th, lock, epoch, hints, budget, f, mode).await
            }
        };
        match outcome {
            Outcome::Done(r) => return Ok(r),
            Outcome::Redispatch => continue,
            Outcome::Expired(e) => return Err(e),
        }
    }
}

/// Mirror of `runner::propagate_runner_error` for the async ladders.
fn propagate_runner_error<R>(budget: Budget, e: TxError) -> Outcome<R> {
    if budget.fallible {
        Outcome::Expired(e)
    } else {
        panic!(
            "{e:?} returned from a closure run via run_async(); \
             use try_run_async to observe deadline/shed errors"
        )
    }
}

/// Drain a post-commit quiescence ticket, one slot sweep per poll; returns
/// the measured drain wait in nanoseconds. The transaction is already
/// published when this runs — the drain only delays *this caller* until
/// concurrent readers of the pre-commit state are done (privatization
/// safety), so suspending between sweeps is sound.
async fn drain_ticket(sys: &TmSystem, mut t: QuiesceTicket) -> u64 {
    loop {
        if let Some(info) = sys.stm.quiesce_pass(&mut t) {
            return info.quiesce_wait_ns;
        }
        exec::yield_now().await;
    }
}

/// One synchronous STM attempt on a claimed slot (async twin of the heart
/// of `runner::run_stm`). Nothing in here suspends.
fn attempt_stm<'a, R, F>(
    th: &'a ThreadHandle,
    slot: usize,
    lock: &'a ElidableMutex,
    budget: Budget,
    spin: bool,
    f: &mut F,
) -> TxStep<'a, R>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    let sys = &*th.sys;
    let mut tx = sys.stm.begin_soft(slot);
    if lock.is_no_quiesce() {
        tx.no_quiesce();
    }
    tx.set_deadline(budget.deadline);
    let mut ctx = TxCtx::new(CtxKind::Stm {
        tx,
        spin_waits: spin,
    });
    ctx.deadline = budget.deadline;
    ctx.async_waits = true;
    let res = {
        let _nest = NestGuard::enter(lock);
        f(&mut ctx)
    };
    let TxCtx {
        kind,
        defers,
        pending_wait,
        ..
    } = ctx;
    let tx = match kind {
        CtxKind::Stm { tx, .. } => tx,
        _ => unreachable!("context kind changed mid-transaction"),
    };
    match res {
        Ok(r) => {
            debug_assert!(pending_wait.is_none(), "wait() result must be propagated");
            match tx.commit_publish() {
                Ok((_info, ticket)) => TxStep::Done(r, ticket, defers),
                Err(cause) => TxStep::Abort(cause),
            }
        }
        Err(TxError::Wait) => {
            let pw = pending_wait.expect("Wait reported without a wait request");
            match tx.commit_publish() {
                Ok((_info, ticket)) => TxStep::Wait(AsyncWait::from_pending(pw), ticket, defers),
                Err(cause) => {
                    runner::reclaim_enqueue_ref(&pw);
                    TxStep::Abort(cause)
                }
            }
        }
        Err(TxError::Abort(AbortCause::Unsafe)) => {
            tx.abort(AbortCause::Unsafe);
            TxStep::Unsafe
        }
        Err(TxError::Abort(c)) => {
            tx.abort(c);
            if let Some(pw) = pending_wait {
                runner::reclaim_enqueue_ref(&pw);
            }
            TxStep::Abort(c)
        }
        Err(e @ (TxError::DeadlineExceeded | TxError::Overloaded)) => {
            tx.abort(AbortCause::Explicit);
            if let Some(pw) = pending_wait {
                runner::reclaim_enqueue_ref(&pw);
            }
            TxStep::RunnerErr(e)
        }
    }
}

/// One synchronous HTM attempt on a claimed slot (async twin of the heart
/// of `runner::run_htm`).
fn attempt_htm<'a, R, F>(
    th: &'a ThreadHandle,
    slot: usize,
    lock: &'a ElidableMutex,
    budget: Budget,
    f: &mut F,
) -> TxStep<'a, R>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    let sys = &*th.sys;
    let tx = sys.htm.begin(slot);
    let mut ctx = TxCtx::new(CtxKind::Htm { tx });
    ctx.deadline = budget.deadline;
    ctx.async_waits = true;
    let res = {
        let _nest = NestGuard::enter(lock);
        f(&mut ctx)
    };
    let TxCtx {
        kind,
        defers,
        pending_wait,
        ..
    } = ctx;
    let tx = match kind {
        CtxKind::Htm { tx } => tx,
        _ => unreachable!("context kind changed mid-transaction"),
    };
    match res {
        Ok(r) => {
            debug_assert!(pending_wait.is_none(), "wait() result must be propagated");
            match tx.commit() {
                Ok(()) => TxStep::Done(r, None, defers),
                Err(cause) => TxStep::Abort(cause),
            }
        }
        Err(TxError::Wait) => {
            let pw = pending_wait.expect("Wait reported without a wait request");
            match tx.commit() {
                Ok(()) => TxStep::Wait(AsyncWait::from_pending(pw), None, defers),
                Err(cause) => {
                    runner::reclaim_enqueue_ref(&pw);
                    TxStep::Abort(cause)
                }
            }
        }
        Err(TxError::Abort(AbortCause::Unsafe)) => {
            tx.abort(AbortCause::Unsafe);
            TxStep::Unsafe
        }
        Err(TxError::Abort(c)) => {
            tx.abort(c);
            if let Some(pw) = pending_wait {
                runner::reclaim_enqueue_ref(&pw);
            }
            TxStep::Abort(c)
        }
        Err(e @ (TxError::DeadlineExceeded | TxError::Overloaded)) => {
            tx.abort(AbortCause::Explicit);
            if let Some(pw) = pending_wait {
                runner::reclaim_enqueue_ref(&pw);
            }
            TxStep::RunnerErr(e)
        }
    }
}

/// Backoff between async attempts: the sync bounded spin (short; stays
/// inside one poll) followed by an executor yield so co-scheduled tasks —
/// possibly including the conflicting one — get the worker.
async fn backoff_async(salt: usize, attempts: u32, consec: u32, ceiling: u32) {
    runner::backoff(salt, attempts, consec, ceiling);
    exec::yield_now().await;
}

async fn run_stm_async<'a, R, F>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    epoch: u64,
    hints: TxHints,
    budget: Budget,
    f: &mut F,
    spin: bool,
) -> Outcome<R>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    let sys = &*th.sys;
    let stm_retries = hints
        .stm_retries
        .unwrap_or_else(|| lock.domain().stm_retries(sys.policy().stm_retries));
    let mut attempts: u32 = 0;
    loop {
        let deadline_up = budget.expired();
        if deadline_up && budget.fallible {
            sys.stats.deadline_exceeded.inc(th.stm_slot);
            trace::emit(
                TraceKind::DeadlineExceeded,
                TxMode::Stm,
                None,
                attempts as u64,
            );
            return Outcome::Expired(TxError::DeadlineExceeded);
        }
        if attempts >= stm_retries
            || deadline_up
            || runner::escalation_due(th)
            || runner::serial_storm_due()
        {
            trace::emit(TraceKind::Fallback, TxMode::Serial, None, attempts as u64);
            match run_serial_async(th, lock, epoch, budget.deadline, f).await {
                SerialOutcome::Done(r) => return Outcome::Done(r),
                SerialOutcome::Retry => {
                    attempts = 0;
                    continue;
                }
                SerialOutcome::Redispatch => return Outcome::Redispatch,
            }
        }
        let token = sys.gate.enter_concurrent_async().await;
        if lock.domain().epoch() != epoch {
            drop(token);
            return Outcome::Redispatch;
        }
        let slots = claim_slots(sys).await;
        let step = attempt_stm(th, slots.stm, lock, budget, spin, f);
        match step {
            TxStep::Done(r, ticket, defers) => {
                let wait_ns = match ticket {
                    Some(t) => drain_ticket(sys, t).await,
                    None => 0,
                };
                th.consec_aborts
                    .store(0, std::sync::atomic::Ordering::Relaxed);
                lock.domain().window.record_commit(wait_ns);
                drop(slots);
                drop(token);
                for d in defers {
                    d();
                }
                return Outcome::Done(r);
            }
            TxStep::Wait(w, ticket, defers) => {
                let wait_ns = match ticket {
                    Some(t) => drain_ticket(sys, t).await,
                    None => 0,
                };
                th.consec_aborts
                    .store(0, std::sync::atomic::Ordering::Relaxed);
                lock.domain().window.record_commit(wait_ns);
                drop(slots);
                drop(token);
                for d in defers {
                    d();
                }
                attempts = 0;
                block_on_async(th, lock, w).await;
            }
            TxStep::Abort(cause) => {
                drop(slots);
                drop(token);
                attempts += 1;
                runner::note_abort(th);
                lock.domain().window.record_abort(cause);
                trace::emit(TraceKind::Retry, TxMode::Stm, Some(cause), attempts as u64);
                backoff_async(
                    th.stm_slot,
                    attempts,
                    th.consecutive_aborts(),
                    sys.policy().backoff_ceiling,
                )
                .await;
            }
            TxStep::Unsafe => {
                drop(slots);
                drop(token);
                trace::emit(
                    TraceKind::Fallback,
                    TxMode::Serial,
                    Some(AbortCause::Unsafe),
                    attempts as u64,
                );
                match run_serial_async(th, lock, epoch, budget.deadline, f).await {
                    SerialOutcome::Done(r) => return Outcome::Done(r),
                    SerialOutcome::Retry => attempts = 0,
                    SerialOutcome::Redispatch => return Outcome::Redispatch,
                }
            }
            TxStep::RunnerErr(e) => {
                drop(slots);
                drop(token);
                return propagate_runner_error(budget, e);
            }
        }
    }
}

async fn run_htm_async<'a, R, F>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    epoch: u64,
    hints: TxHints,
    budget: Budget,
    f: &mut F,
) -> Outcome<R>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    let sys = &*th.sys;
    let htm_retries = hints
        .htm_retries
        .unwrap_or_else(|| lock.domain().htm_retries(sys.policy().htm_retries));
    let mut attempts: u32 = 0;
    loop {
        let deadline_up = budget.expired();
        if deadline_up && budget.fallible {
            sys.stats.deadline_exceeded.inc(th.stm_slot);
            trace::emit(
                TraceKind::DeadlineExceeded,
                TxMode::Htm,
                None,
                attempts as u64,
            );
            return Outcome::Expired(TxError::DeadlineExceeded);
        }
        if attempts >= htm_retries
            || deadline_up
            || runner::escalation_due(th)
            || runner::serial_storm_due()
        {
            trace::emit(TraceKind::Fallback, TxMode::Serial, None, attempts as u64);
            match run_serial_async(th, lock, epoch, budget.deadline, f).await {
                SerialOutcome::Done(r) => return Outcome::Done(r),
                SerialOutcome::Retry => {
                    attempts = 0;
                    continue;
                }
                SerialOutcome::Redispatch => return Outcome::Redispatch,
            }
        }
        let token = sys.gate.enter_concurrent_async().await;
        if lock.domain().epoch() != epoch {
            drop(token);
            return Outcome::Redispatch;
        }
        let slots = claim_slots(sys).await;
        let step = attempt_htm(th, slots.htm, lock, budget, f);
        drop(slots);
        match step {
            TxStep::Done(r, _ticket, defers) => {
                th.consec_aborts
                    .store(0, std::sync::atomic::Ordering::Relaxed);
                lock.domain().window.record_commit(0);
                drop(token);
                for d in defers {
                    d();
                }
                return Outcome::Done(r);
            }
            TxStep::Wait(w, _ticket, defers) => {
                th.consec_aborts
                    .store(0, std::sync::atomic::Ordering::Relaxed);
                lock.domain().window.record_commit(0);
                drop(token);
                for d in defers {
                    d();
                }
                attempts = 0;
                block_on_async(th, lock, w).await;
            }
            TxStep::Abort(cause) => {
                drop(token);
                attempts += 1;
                runner::note_abort(th);
                lock.domain().window.record_abort(cause);
                trace::emit(TraceKind::Retry, TxMode::Htm, Some(cause), attempts as u64);
                backoff_async(
                    th.htm_slot,
                    attempts,
                    th.consecutive_aborts(),
                    sys.policy().backoff_ceiling,
                )
                .await;
            }
            TxStep::Unsafe => {
                drop(token);
                trace::emit(
                    TraceKind::Fallback,
                    TxMode::Serial,
                    Some(AbortCause::Unsafe),
                    attempts as u64,
                );
                match run_serial_async(th, lock, epoch, budget.deadline, f).await {
                    SerialOutcome::Done(r) => return Outcome::Done(r),
                    SerialOutcome::Retry => attempts = 0,
                    SerialOutcome::Redispatch => return Outcome::Redispatch,
                }
            }
            TxStep::RunnerErr(e) => {
                drop(token);
                return propagate_runner_error(budget, e);
            }
        }
    }
}

async fn run_serial_async<'a, R, F>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    epoch: u64,
    deadline: Option<Instant>,
    f: &mut F,
) -> SerialOutcome<R>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    let sys = &*th.sys;
    // Unwind/cancel audit: the serial token releases the gate in its Drop
    // impl, so both a panic inside `f` and this future being dropped while
    // suspended reopen the gate.
    let token = sys.gate.enter_serial_async().await;
    if lock.domain().epoch() != epoch {
        drop(token);
        return SerialOutcome::Redispatch;
    }
    let step = {
        history::begin(TxMode::Serial);
        let mut ctx = TxCtx::new(CtxKind::Serial);
        ctx.deadline = deadline;
        ctx.async_waits = true;
        let res = {
            let _nest = NestGuard::enter(lock);
            f(&mut ctx)
        };
        let TxCtx {
            kind: _,
            defers,
            pending_wait,
            ..
        } = ctx;
        sys.stats.serial_fallbacks.inc(th.stm_slot);
        lock.domain().window.record_serial();
        match res {
            Ok(r) => {
                debug_assert!(pending_wait.is_none(), "wait() result must be propagated");
                sys.stats.commits.inc(th.stm_slot);
                trace::emit(TraceKind::Commit, TxMode::Serial, None, 0);
                history::commit();
                SerialStep::Done(r, defers)
            }
            Err(TxError::Wait) => {
                sys.stats.commits.inc(th.stm_slot);
                trace::emit(TraceKind::Commit, TxMode::Serial, None, 0);
                history::commit();
                let pw = pending_wait.expect("Wait reported without a wait request");
                SerialStep::Wait(AsyncWait::from_pending(pw), defers)
            }
            Err(TxError::Abort(c)) => {
                panic!(
                    "operation aborted ({c}) in serial-irrevocable mode: effects cannot be undone"
                )
            }
            Err(e @ (TxError::DeadlineExceeded | TxError::Overloaded)) => {
                panic!("{e:?} raised in serial-irrevocable mode: effects cannot be undone")
            }
        }
    };
    drop(token);
    match step {
        SerialStep::Done(r, defers) => {
            for d in defers {
                d();
            }
            SerialOutcome::Done(r)
        }
        SerialStep::Wait(w, defers) => {
            for d in defers {
                d();
            }
            block_on_async(th, lock, w).await;
            SerialOutcome::Retry
        }
    }
}

/// What one baseline acquisition round produced.
enum LockedStep<'a, R> {
    WouldBlock,
    Redispatch,
    Done(R, Defers),
    Wait(AsyncWait<'a>, Defers),
}

async fn run_locked_async<'a, R, F>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    epoch: u64,
    deadline: Option<Instant>,
    f: &mut F,
) -> Outcome<R>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    let _ = th;
    sched::yield_point(YieldPoint::LockWord);
    loop {
        let step = {
            // Acquire without parking the worker; the guard never crosses
            // an await (everything under it is synchronous).
            match lock.raw().try_lock() {
                None => LockedStep::WouldBlock,
                Some(guard) => {
                    if lock.domain().epoch() != epoch {
                        LockedStep::Redispatch
                    } else {
                        history::begin(TxMode::Locked);
                        let mut ctx = TxCtx::new(CtxKind::Locked { guard: Some(guard) });
                        ctx.deadline = deadline;
                        ctx.async_waits = true;
                        let res = {
                            let _nest = NestGuard::enter(lock);
                            f(&mut ctx)
                        };
                        let TxCtx {
                            kind,
                            defers,
                            pending_wait,
                            ..
                        } = ctx;
                        let g = match kind {
                            CtxKind::Locked { guard: Some(g) } => g,
                            _ => unreachable!("baseline context lost its guard"),
                        };
                        match res {
                            Ok(r) => {
                                debug_assert!(
                                    pending_wait.is_none(),
                                    "wait() result must be propagated"
                                );
                                lock.domain().window.record_serial();
                                history::commit();
                                drop(g);
                                LockedStep::Done(r, defers)
                            }
                            Err(TxError::Wait) => {
                                // The wait itself is the section's commit
                                // point; the registration went into the
                                // transactional ring under the held mutex
                                // (async_waits), so release and await it.
                                history::commit();
                                let pw =
                                    pending_wait.expect("Wait reported without a wait request");
                                drop(g);
                                LockedStep::Wait(AsyncWait::from_pending(pw), defers)
                            }
                            Err(TxError::Abort(c)) => {
                                panic!("cannot abort ({c}) while holding the baseline lock")
                            }
                            Err(e @ (TxError::DeadlineExceeded | TxError::Overloaded)) => {
                                panic!(
                                    "{e:?} raised while holding the baseline lock: \
                                     effects cannot be undone"
                                )
                            }
                        }
                    }
                }
            }
        };
        match step {
            LockedStep::WouldBlock => {
                sched::spin_hint(YieldPoint::LockWord);
                exec::yield_now().await;
            }
            LockedStep::Redispatch => return Outcome::Redispatch,
            LockedStep::Done(r, defers) => {
                for d in defers {
                    d();
                }
                return Outcome::Done(r);
            }
            LockedStep::Wait(w, defers) => {
                for d in defers {
                    d();
                }
                block_on_async(th, lock, w).await;
                // The mutex was released across the wait; a flip may have
                // completed in between (mirrors the sync epoch re-check).
                if lock.domain().epoch() != epoch {
                    return Outcome::Redispatch;
                }
            }
        }
    }
}

async fn run_adaptive_async<'a, R, F>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    epoch: u64,
    hints: TxHints,
    budget: Budget,
    f: &mut F,
    mode: AlgoMode,
) -> Outcome<R>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    /// glibc's skip_lock_internal_abort analogue (see `run_adaptive_htm`).
    const SKIP_AFTER_FAILURE: u32 = 3;
    let sys = &*th.sys;
    let htm_retries = hints
        .htm_retries
        .unwrap_or_else(|| lock.domain().htm_retries(sys.policy().htm_retries));
    let mut attempts: u32 = 0;
    loop {
        if lock.domain().epoch() != epoch {
            return Outcome::Redispatch;
        }
        let deadline_up = budget.expired();
        if deadline_up && budget.fallible {
            sys.stats.deadline_exceeded.inc(th.stm_slot);
            trace::emit(
                TraceKind::DeadlineExceeded,
                TxMode::Htm,
                None,
                attempts as u64,
            );
            return Outcome::Expired(TxError::DeadlineExceeded);
        }
        if lock.consume_skip() || attempts >= htm_retries || deadline_up {
            if attempts >= htm_retries {
                lock.set_skip(SKIP_AFTER_FAILURE);
                sys.stats.serial_fallbacks.inc(th.stm_slot);
            }
            trace::emit(TraceKind::Fallback, TxMode::Locked, None, attempts as u64);
            match adaptive_lock_path_async(th, lock, epoch, budget.deadline, f, mode).await {
                SerialOutcome::Done(r) => return Outcome::Done(r),
                SerialOutcome::Retry => {
                    attempts = 0;
                    continue;
                }
                SerialOutcome::Redispatch => return Outcome::Redispatch,
            }
        }
        if !mode.is_lazy() {
            // Don't start while the lock is held (immediate subscription
            // abort is wasted work); yield the worker instead of spinning.
            // Lazy modes skip this — not touching the lock word before
            // commit is their point.
            while lock.held_cell().load_direct() {
                sched::spin_hint(YieldPoint::LockWord);
                exec::yield_now().await;
            }
        }
        let slots = claim_slots(sys).await;
        let step = attempt_adaptive(th, slots.htm, lock, epoch, budget, f, mode);
        drop(slots);
        match step {
            AdaptiveStep::Done(r, defers) => {
                lock.domain().window.record_commit(0);
                for d in defers {
                    d();
                }
                return Outcome::Done(r);
            }
            AdaptiveStep::Wait(w, defers) => {
                lock.domain().window.record_commit(0);
                for d in defers {
                    d();
                }
                attempts = 0;
                block_on_async(th, lock, w).await;
            }
            AdaptiveStep::SubscribedHeld => {
                attempts += 1;
                lock.domain().window.record_abort(AbortCause::Conflict);
                trace::emit(
                    TraceKind::Retry,
                    TxMode::Htm,
                    Some(AbortCause::Conflict),
                    attempts as u64,
                );
            }
            AdaptiveStep::Abort(cause) => {
                attempts += 1;
                lock.domain().window.record_abort(cause);
                trace::emit(TraceKind::Retry, TxMode::Htm, Some(cause), attempts as u64);
                backoff_async(th.htm_slot, attempts, 0, sys.policy().backoff_ceiling).await;
            }
            AdaptiveStep::Redispatch => return Outcome::Redispatch,
            AdaptiveStep::Unsafe => {
                sys.stats.serial_fallbacks.inc(th.stm_slot);
                trace::emit(
                    TraceKind::Fallback,
                    TxMode::Locked,
                    Some(AbortCause::Unsafe),
                    attempts as u64,
                );
                match adaptive_lock_path_async(th, lock, epoch, budget.deadline, f, mode).await {
                    SerialOutcome::Done(r) => return Outcome::Done(r),
                    SerialOutcome::Retry => attempts = 0,
                    SerialOutcome::Redispatch => return Outcome::Redispatch,
                }
            }
            AdaptiveStep::RunnerErr(e) => return propagate_runner_error(budget, e),
        }
    }
}

enum AdaptiveStep<'a, R> {
    Done(R, Defers),
    Wait(AsyncWait<'a>, Defers),
    /// The lock-word subscription read `true`: retry without backoff.
    SubscribedHeld,
    Abort(AbortCause),
    Redispatch,
    Unsafe,
    RunnerErr(TxError),
}

/// One synchronous adaptive-elision attempt on a claimed HTM slot. `mode`
/// selects the subscription discipline: eager (subscribe the lock word at
/// begin) or lazy (seqlock window capture + commit-time check; see
/// `runner::run_adaptive_htm` for the guard ordering).
fn attempt_adaptive<'a, R, F>(
    th: &'a ThreadHandle,
    slot: usize,
    lock: &'a ElidableMutex,
    epoch: u64,
    budget: Budget,
    f: &mut F,
    mode: AlgoMode,
) -> AdaptiveStep<'a, R>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    let sys = &*th.sys;
    let lazy = mode.is_lazy();
    // Seeded bug (reorder hazard): capture hoisted above begin; see the
    // sync runner.
    let hoisted_g0 = if lazy && mutant::armed(Mutant::LazySubscriptionReorder) {
        let g = lock.elision_seq();
        sched::yield_point(YieldPoint::LockWord);
        Some(g)
    } else {
        None
    };
    let mut tx = sys.htm.begin(slot);
    let g0 = if lazy {
        hoisted_g0.unwrap_or_else(|| lock.elision_seq())
    } else {
        0
    };
    if !lazy {
        match tx.read(lock.held_cell()) {
            Ok(false) => {}
            Ok(true) => {
                tx.abort(AbortCause::Conflict);
                return AdaptiveStep::SubscribedHeld;
            }
            Err(e) => {
                tx.abort(e);
                return AdaptiveStep::Abort(e);
            }
        }
    } else if !mode.is_lazy_unsafe()
        && g0 & 1 == 1
        && !mutant::armed(Mutant::LazyCommitWithLockHeld)
    {
        // Begin-refusal: the window opened with the lock held.
        tx.abort(AbortCause::Conflict);
        return AdaptiveStep::SubscribedHeld;
    }
    if lock.domain().epoch() != epoch {
        tx.abort(AbortCause::Explicit);
        return AdaptiveStep::Redispatch;
    }
    let mut ctx = TxCtx::new(CtxKind::Htm { tx });
    ctx.deadline = budget.deadline;
    ctx.async_waits = true;
    let res = {
        let _nest = NestGuard::enter(lock);
        f(&mut ctx)
    };
    let TxCtx {
        kind,
        defers,
        pending_wait,
        ..
    } = ctx;
    let tx = match kind {
        CtxKind::Htm { tx } => tx,
        _ => unreachable!("context kind changed mid-transaction"),
    };
    match res {
        Ok(r) => {
            debug_assert!(pending_wait.is_none(), "wait() result must be propagated");
            let commit = match runner::lazy_precommit_gate(lock, mode, g0, lazy) {
                Ok(()) => tx.commit(),
                Err(cause) => {
                    tx.abort(cause);
                    Err(cause)
                }
            };
            match commit {
                Ok(()) => AdaptiveStep::Done(r, defers),
                Err(cause) => AdaptiveStep::Abort(cause),
            }
        }
        Err(TxError::Wait) => {
            let pw = pending_wait.expect("Wait reported without a wait request");
            let commit = match runner::lazy_precommit_gate(lock, mode, g0, lazy) {
                Ok(()) => tx.commit(),
                Err(cause) => {
                    tx.abort(cause);
                    Err(cause)
                }
            };
            match commit {
                Ok(()) => AdaptiveStep::Wait(AsyncWait::from_pending(pw), defers),
                Err(cause) => {
                    runner::reclaim_enqueue_ref(&pw);
                    AdaptiveStep::Abort(cause)
                }
            }
        }
        Err(TxError::Abort(AbortCause::Unsafe)) => {
            tx.abort(AbortCause::Unsafe);
            AdaptiveStep::Unsafe
        }
        Err(TxError::Abort(c)) => {
            tx.abort(c);
            if let Some(pw) = pending_wait {
                runner::reclaim_enqueue_ref(&pw);
            }
            AdaptiveStep::Abort(c)
        }
        Err(e @ (TxError::DeadlineExceeded | TxError::Overloaded)) => {
            tx.abort(AbortCause::Explicit);
            if let Some(pw) = pending_wait {
                runner::reclaim_enqueue_ref(&pw);
            }
            AdaptiveStep::RunnerErr(e)
        }
    }
}

/// Acquire the adaptive lock word without monopolizing a worker: CAS with
/// executor yields, then make the acquisition visible to speculators.
/// Eager modes doom subscribed transactions via the non-blocking
/// [`try_invalidate`](tle_htm::HtmGlobal::try_invalidate), yielding while a
/// victim is mid-commit; safe-lazy bumps the acquisition seqlock and
/// sweep-dooms every active transaction ([`try_doom_all_active`]
/// (tle_htm::HtmGlobal::try_doom_all_active) + yields); naive-lazy
/// deliberately does neither (see `runner::adaptive_acquire`).
async fn adaptive_acquire_async(sys: &TmSystem, lock: &ElidableMutex, mode: AlgoMode) {
    sched::yield_point(YieldPoint::LockWord);
    loop {
        if !lock.held_cell().load_direct()
            && lock
                .held_cell()
                .word()
                .compare_exchange(
                    0,
                    1,
                    std::sync::atomic::Ordering::SeqCst,
                    std::sync::atomic::Ordering::SeqCst,
                )
                .is_ok()
        {
            break;
        }
        sched::spin_hint(YieldPoint::LockWord);
        exec::yield_now().await;
    }
    if mode.is_lazy() {
        lock.seq_bump();
        if mode.is_lazy_unsafe() {
            while !sys.htm.try_invalidate(lock.held_cell()) {
                sched::spin_hint(YieldPoint::LockWord);
                exec::yield_now().await;
            }
        } else if !mutant::armed(Mutant::LazyZombieEscape) {
            while !sys.htm.try_doom_all_active() {
                sched::spin_hint(YieldPoint::LockWord);
                exec::yield_now().await;
            }
        }
    } else {
        while !sys.htm.try_invalidate(lock.held_cell()) {
            sched::spin_hint(YieldPoint::LockWord);
            exec::yield_now().await;
        }
    }
}

/// Release the adaptive lock word, restoring the lazy seqlock to even.
fn adaptive_release(lock: &ElidableMutex, mode: AlgoMode) {
    lock.held_cell().store_direct(false);
    if mode.is_lazy() {
        lock.seq_bump();
    }
}

/// Async twin of `runner::run_adaptive_lock_path`.
async fn adaptive_lock_path_async<'a, R, F>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    epoch: u64,
    deadline: Option<Instant>,
    f: &mut F,
    mode: AlgoMode,
) -> SerialOutcome<R>
where
    F: FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
{
    let sys = &*th.sys;
    adaptive_acquire_async(sys, lock, mode).await;
    if lock.domain().epoch() != epoch {
        adaptive_release(lock, mode);
        return SerialOutcome::Redispatch;
    }
    let step = {
        history::begin(TxMode::Locked);
        let mut ctx = TxCtx::new(CtxKind::Serial);
        ctx.deadline = deadline;
        ctx.async_waits = true;
        let res = {
            let _nest = NestGuard::enter(lock);
            f(&mut ctx)
        };
        let TxCtx {
            kind: _,
            defers,
            pending_wait,
            ..
        } = ctx;
        if matches!(res, Ok(_) | Err(TxError::Wait)) {
            history::commit();
        }
        adaptive_release(lock, mode);
        match res {
            Ok(r) => {
                debug_assert!(pending_wait.is_none(), "wait() result must be propagated");
                lock.domain().window.record_serial();
                SerialStep::Done(r, defers)
            }
            Err(TxError::Wait) => {
                lock.domain().window.record_serial();
                let pw = pending_wait.expect("Wait reported without a wait request");
                SerialStep::Wait(AsyncWait::from_pending(pw), defers)
            }
            Err(TxError::Abort(c)) => {
                panic!(
                    "operation aborted ({c}) while holding the elided lock: \
                     effects cannot be undone"
                )
            }
            Err(e @ (TxError::DeadlineExceeded | TxError::Overloaded)) => {
                panic!("{e:?} raised while holding the elided lock: effects cannot be undone")
            }
        }
    };
    match step {
        SerialStep::Done(r, defers) => {
            for d in defers {
                d();
            }
            SerialOutcome::Done(r)
        }
        SerialStep::Wait(w, defers) => {
            for d in defers {
                d();
            }
            block_on_async(th, lock, w).await;
            SerialOutcome::Retry
        }
    }
}

/// Removes an abandoned ring entry when a suspended async wait is dropped
/// instead of polled to completion: without this, the entry would linger
/// and a later signal could be consumed by the ghost waiter (the PR-8
/// cancellation caveat, DESIGN.md §16). The removal runs synchronously in
/// `Drop` via `runner::cancel_wait` — ring-entry ownership transfer never
/// suspends, and the dropping thread is by definition outside any poll.
/// Defused on every normal exit path (signal, timeout-cancel).
struct WaitEntryGuard<'a> {
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    cv: &'a TxCondvar,
    raw: RawWaiter,
    armed: bool,
}

impl Drop for WaitEntryGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            runner::cancel_wait(self.th, self.lock, self.cv, self.raw.0);
        }
    }
}

/// Suspend on a committed wait registration (or just yield under spin-mode
/// polling). Async twin of `runner::block_on`.
async fn block_on_async<'a>(th: &'a ThreadHandle, lock: &'a ElidableMutex, w: AsyncWait<'a>) {
    match w.waiter {
        None => {
            // Spin/poll degradation: re-run the section after giving the
            // worker away once.
            sched::spin_hint(YieldPoint::Park);
            exec::yield_now().await;
        }
        Some(waiter) => {
            let mut guard = WaitEntryGuard {
                th,
                lock,
                cv: w.cv,
                raw: w.raw,
                armed: true,
            };
            let signaled = wait_signaled(&waiter, w.timeout).await;
            guard.armed = false;
            trace::emit(TraceKind::WaitPark, TxMode::Serial, None, !signaled as u64);
            if !signaled {
                cancel_wait_async(th, lock, w.cv, w.raw).await;
            }
        }
    }
}

/// Await the waiter's signal, bounded by `timeout` via an executor timer.
/// Returns whether the wait was signalled (`false` = timed out). On the
/// timeout edge the signal flag disambiguates a race: a notify that landed
/// before the timer fired counts as signalled.
async fn wait_signaled(waiter: &Waiter, timeout: Option<Duration>) -> bool {
    match timeout {
        None => {
            std::future::poll_fn(|cx| waiter.poll_signaled(cx)).await;
            true
        }
        Some(t) => {
            let deadline = Instant::now() + t;
            let mut sleep = exec::sleep_until(deadline);
            std::future::poll_fn(move |cx| {
                if waiter.poll_signaled(cx).is_ready() {
                    return Poll::Ready(true);
                }
                match std::pin::Pin::new(&mut sleep).poll(cx) {
                    Poll::Ready(()) => Poll::Ready(waiter.is_signaled()),
                    Poll::Pending => Poll::Pending,
                }
            })
            .await
        }
    }
}

use std::future::Future as _;

/// Timed-out waiter: remove our ring entry, as `runner::cancel_wait` does,
/// but with async gate entry, transient slot claims, and an async-safe
/// excluded path.
async fn cancel_wait_async<'a>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    cv: &'a TxCondvar,
    raw: RawWaiter,
) {
    let sys = &*th.sys;
    let mut attempts = 0u32;
    let removed = loop {
        if attempts >= sys.policy().stm_retries {
            break remove_waiter_excluded_async(th, lock, cv, raw).await;
        }
        let token = sys.gate.enter_concurrent_async().await;
        let mode = lock.resolved_mode(sys.mode());
        if mode == AlgoMode::Baseline || mode.is_glibc_family() {
            drop(token);
            break remove_waiter_excluded_async(th, lock, cv, raw).await;
        }
        let slots = claim_slots(sys).await;
        let outcome = if mode == AlgoMode::HtmCondvar {
            let tx = sys.htm.begin(slots.htm);
            let mut ctx = TxCtx::new(CtxKind::Htm { tx });
            let r = cv.remove(&mut ctx, raw.0);
            let tx = match ctx.kind {
                CtxKind::Htm { tx } => tx,
                _ => unreachable!(),
            };
            match r {
                Ok(found) => tx.commit().map(|_| (found, None)),
                Err(e) => {
                    tx.abort(e);
                    Err(e)
                }
            }
        } else {
            let tx = sys.stm.begin_soft(slots.stm);
            let mut ctx = TxCtx::new(CtxKind::Stm {
                tx,
                spin_waits: false,
            });
            let r = cv.remove(&mut ctx, raw.0);
            let tx = match ctx.kind {
                CtxKind::Stm { tx, .. } => tx,
                _ => unreachable!(),
            };
            match r {
                Ok(found) => tx.commit_publish().map(|(_, t)| (found, t)),
                Err(e) => {
                    tx.abort(e);
                    Err(e)
                }
            }
        };
        match outcome {
            Ok((found, ticket)) => {
                if let Some(t) = ticket {
                    drain_ticket(sys, t).await;
                }
                drop(slots);
                drop(token);
                break found;
            }
            Err(_) => {
                drop(slots);
                drop(token);
                attempts += 1;
                backoff_async(th.stm_slot, attempts, 0, sys.policy().backoff_ceiling).await;
            }
        }
    };
    if removed {
        // SAFETY: the queue entry held an `Arc` reference produced by
        // `Arc::into_raw` in `TxCtx::wait`; removing the entry transfers
        // that reference to us.
        unsafe { drop(Arc::from_raw(raw.0)) };
    }
}

/// Remove a waiter entry under total exclusion without ever parking the
/// worker. Lock-order note: the sync `remove_waiter_excluded` takes
/// serial gate → raw mutex → adaptive word; here the word is taken
/// *before* the raw mutex because word acquisition may suspend (it dooms
/// transactions via `try_invalidate`) while a mutex guard must stay inside
/// one poll. The inversion is safe **under the serial token**: every other
/// gate-supervised word+mutex claimant (mode flips, sync excluded removal)
/// queues behind the gate first, and raw-mutex holders that bypass the gate
/// (baseline sections) never take the word, so no cycle exists.
async fn remove_waiter_excluded_async<'a>(
    th: &'a ThreadHandle,
    lock: &'a ElidableMutex,
    cv: &'a TxCondvar,
    raw: RawWaiter,
) -> bool {
    let sys = &*th.sys;
    let token = sys.gate.enter_serial_async().await;
    // Serial token held: the resolved mode cannot flip under us, so the
    // acquire/release pair keeps the lazy seqlock parity consistent.
    let mode = lock.resolved_mode(sys.mode());
    adaptive_acquire_async(sys, lock, mode).await;
    let removed = loop {
        let r = {
            match lock.raw().try_lock() {
                None => None,
                Some(_guard) => {
                    let mut ctx = TxCtx::new(CtxKind::Serial);
                    Some(
                        cv.remove(&mut ctx, raw.0)
                            .expect("direct access cannot abort"),
                    )
                }
            }
        };
        match r {
            Some(found) => break found,
            None => exec::yield_now().await,
        }
    };
    adaptive_release(lock, mode);
    drop(token);
    removed
}
