//! Transaction-friendly condition variables (Wang et al., paper [37]).
//!
//! A classic pthread condvar cannot be used inside a transaction: the wait
//! would block with speculative state live, and the unlock/sleep pair has no
//! transactional equivalent. Wang's construction — the one the paper adopts
//! and extends with timed waits (§VI-d) — makes the *waiter queue itself
//! transactional state*:
//!
//! - a waiting transaction enqueues its waiter handle **transactionally**
//!   and then, as its last action, commits and blocks on a private channel.
//!   Enqueue and predicate check are in the same transaction, so a signal
//!   cannot slip between them: no lost wakeups.
//! - a signalling transaction dequeues a waiter transactionally and defers
//!   the actual wakeup to its commit — an aborted signaller wakes no one.
//! - timed waits (x265's soft real-time requirement) block on the private
//!   channel with a timeout; on timeout the waiter cancels its queue entry
//!   in a small follow-up transaction.
//!
//! Under the baseline algorithm the same object degrades to a plain
//! `parking_lot::Condvar` used with the un-elided mutex.

use crate::ctx::TxCtx;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use tle_base::fault::{self, Hazard};
use tle_base::mutant::{self, Mutant};
use tle_base::sched::{self, YieldPoint};
use tle_base::trace::{self, TraceKind, TxMode};
use tle_base::{AbortCause, TCell};

/// Ring capacity. Bounded by `MAX_SLOTS` concurrent threads each having at
/// most one pending wait, plus cancelled (null) residue; 256 gives ample
/// slack.
const RING: usize = 256;

/// The state behind a waiter's private channel: the signalled flag plus an
/// optional task waker armed by the async wait path. Both live under one
/// mutex so a notify can never slip between an async waiter checking the
/// flag and parking its waker.
struct WaitState {
    signaled: bool,
    waker: Option<std::task::Waker>,
}

/// A waiter's private wakeup channel. Sync waits park on the condvar
/// ([`Waiter::wait`]); async waits poll the flag and re-arm a waker
/// ([`Waiter::poll_signaled`]). A single notify serves both.
pub(crate) struct Waiter {
    state: Mutex<WaitState>,
    cv: Condvar,
}

impl Waiter {
    pub(crate) fn new() -> Self {
        Waiter {
            state: Mutex::new(WaitState {
                signaled: false,
                waker: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Wake the waiter (idempotent).
    pub(crate) fn notify(&self) {
        // Fault oracle: widen the window between a committed dequeue and
        // the wakeup delivery. Lost-wakeup bugs hide exactly here — the
        // waiter must already be parked on (or headed for) this private
        // channel, so the delayed notify still lands.
        if fault::maybe_stall(Hazard::SignalDelay) > 0 {
            trace::emit(
                TraceKind::FaultInject,
                TxMode::Locked,
                None,
                Hazard::SignalDelay.index() as u64,
            );
        }
        sched::yield_point(YieldPoint::Notify);
        // Seeded bug: the committed dequeue happened, but the wakeup is
        // dropped on the floor — the waiter sleeps forever (or until its
        // timeout, turning a signal into a spurious-looking timeout). The
        // waker delivery is suppressed along with the condvar notify so the
        // async path sees the same bug.
        if mutant::armed(Mutant::LostSignal) {
            return;
        }
        let waker = {
            let mut s = self.state.lock();
            s.signaled = true;
            self.cv.notify_one();
            s.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// Async wait step: `Ready(())` once notified, else park the task waker
    /// under the same lock that guards the flag (so a concurrent
    /// [`notify`](Self::notify) either sees the waker or has already set the
    /// flag for the recheck).
    pub(crate) fn poll_signaled(&self, cx: &mut std::task::Context<'_>) -> std::task::Poll<()> {
        let mut s = self.state.lock();
        if s.signaled {
            std::task::Poll::Ready(())
        } else {
            s.waker = Some(cx.waker().clone());
            std::task::Poll::Pending
        }
    }

    /// Non-blocking check (async timeout path: distinguishes "signalled
    /// while cancelling" from a clean timeout).
    pub(crate) fn is_signaled(&self) -> bool {
        self.state.lock().signaled
    }

    /// Block until notified; returns `true` if notified, `false` on timeout.
    pub(crate) fn wait(&self, timeout: Option<Duration>) -> bool {
        // Fault oracle: deliver one spurious return from the sleep — the
        // predicate loop below must re-check `state` and park again rather
        // than report a wakeup that never happened.
        let mut spurious = fault::enabled() && fault::fire(Hazard::SpuriousWake);
        if spurious {
            trace::emit(
                TraceKind::FaultInject,
                TxMode::Locked,
                None,
                Hazard::SpuriousWake.index() as u64,
            );
        }
        // The whole park is bracketed for the cooperative scheduler: the
        // thread leaves the token ring while it sleeps on the OS channel and
        // rejoins once (and if) the wakeup lands.
        sched::yield_point(YieldPoint::Park);
        sched::block_enter();
        let woke = {
            let mut s = self.state.lock();
            match timeout {
                None => {
                    while !s.signaled {
                        if spurious {
                            spurious = false; // wait() "returned" without a notify
                            continue;
                        }
                        self.cv.wait(&mut s);
                    }
                    true
                }
                Some(d) => {
                    let deadline = std::time::Instant::now() + d;
                    let mut woke = true;
                    while !s.signaled {
                        if spurious {
                            spurious = false;
                            continue;
                        }
                        if self.cv.wait_until(&mut s, deadline).timed_out() {
                            woke = s.signaled;
                            break;
                        }
                    }
                    woke
                }
            }
        };
        sched::block_exit();
        woke
    }
}

/// A condition variable usable from elided critical sections under every
/// [`AlgoMode`](crate::AlgoMode).
pub struct TxCondvar {
    head: TCell<u64>,
    tail: TCell<u64>,
    ring: Box<[TCell<*const Waiter>]>,
    native: Condvar,
    /// Threads currently parked in [`native_wait`](Self::native_wait)
    /// (baseline-mode waiters). Per-lock mode flips mean a TM-mode
    /// signaller can coexist with waiters parked natively before the flip;
    /// the signaller consults this counter to know it must also poke the
    /// native channel.
    native_waiters: AtomicUsize,
}

impl TxCondvar {
    /// A fresh condition variable.
    pub fn new() -> Self {
        TxCondvar {
            head: TCell::new(0),
            tail: TCell::new(0),
            ring: (0..RING)
                .map(|_| TCell::new(std::ptr::null::<Waiter>()))
                .collect(),
            native: Condvar::new(),
            native_waiters: AtomicUsize::new(0),
        }
    }

    /// Number of enqueued entries (including cancelled residue); for
    /// diagnostics and tests only — racy outside a transaction.
    pub fn approx_len(&self) -> usize {
        let h = self.head.load_direct();
        let t = self.tail.load_direct();
        t.saturating_sub(h) as usize
    }

    /// Transactionally append a waiter pointer.
    pub(crate) fn enqueue(
        &self,
        ctx: &mut TxCtx<'_>,
        raw: *const Waiter,
    ) -> Result<(), AbortCause> {
        let cap = RING as u64;
        let mut h = ctx.mem_read(&self.head)?;
        let t = ctx.mem_read(&self.tail)?;
        let h0 = h;
        // Compact leading cancelled entries so the ring cannot clog with
        // timed-out waiters.
        while h < t {
            let p = ctx.mem_read(&self.ring[(h % cap) as usize])?;
            if p.is_null() {
                h += 1;
            } else {
                break;
            }
        }
        if h != h0 {
            ctx.mem_write(&self.head, h)?;
        }
        assert!(
            t - h < cap,
            "TxCondvar ring overflow: too many pending waiters"
        );
        ctx.mem_write(&self.ring[(t % cap) as usize], raw)?;
        ctx.mem_write(&self.tail, t + 1)?;
        Ok(())
    }

    /// Transactionally pop the oldest live waiter, if any.
    pub(crate) fn dequeue(&self, ctx: &mut TxCtx<'_>) -> Result<Option<*const Waiter>, AbortCause> {
        let cap = RING as u64;
        let mut h = ctx.mem_read(&self.head)?;
        let t = ctx.mem_read(&self.tail)?;
        let h0 = h;
        let mut found = None;
        while h < t {
            let idx = (h % cap) as usize;
            let p = ctx.mem_read(&self.ring[idx])?;
            h += 1;
            if !p.is_null() {
                ctx.mem_write(&self.ring[idx], std::ptr::null::<Waiter>())?;
                found = Some(p);
                break;
            }
        }
        if h != h0 {
            ctx.mem_write(&self.head, h)?;
        }
        Ok(found)
    }

    /// Transactionally cancel a specific waiter entry (timed-wait timeout).
    /// Returns `true` if the entry was found and removed; `false` means a
    /// signaller already claimed it.
    pub(crate) fn remove(
        &self,
        ctx: &mut TxCtx<'_>,
        raw: *const Waiter,
    ) -> Result<bool, AbortCause> {
        let cap = RING as u64;
        let h = ctx.mem_read(&self.head)?;
        let t = ctx.mem_read(&self.tail)?;
        let mut i = h;
        while i < t {
            let idx = (i % cap) as usize;
            let p = ctx.mem_read(&self.ring[idx])?;
            if std::ptr::eq(p, raw) {
                ctx.mem_write(&self.ring[idx], std::ptr::null::<Waiter>())?;
                return Ok(true);
            }
            i += 1;
        }
        Ok(false)
    }

    /// Baseline-mode wakeups (plain pthread semantics).
    pub(crate) fn notify_native_one(&self) {
        self.native.notify_one();
    }

    pub(crate) fn notify_native_all(&self) {
        self.native.notify_all();
    }

    /// Whether any thread is parked on the native channel. A transactional
    /// signaller that finds the ring empty (or even non-empty — over-notify
    /// is harmless, waiters re-check their predicate) must wake these too:
    /// they may have parked while the lock ran baseline, before a flip.
    ///
    /// Visibility: a native waiter increments the counter *while holding
    /// the raw mutex*, and a flip away from baseline acquires that mutex,
    /// so any signaller running after the flip observes the increment.
    pub(crate) fn has_native_waiters(&self) -> bool {
        self.native_waiters.load(Ordering::SeqCst) > 0
    }

    /// Baseline-mode wait: atomically release `guard` and sleep. Returns
    /// `true` if (possibly spuriously) woken before the timeout.
    pub(crate) fn native_wait(
        &self,
        guard: &mut parking_lot::MutexGuard<'_, ()>,
        timeout: Option<Duration>,
    ) -> bool {
        // Incremented while the mutex is still held — see
        // `has_native_waiters` for why that ordering matters.
        self.native_waiters.fetch_add(1, Ordering::SeqCst);
        let woke = match timeout {
            None => {
                self.native.wait(guard);
                true
            }
            Some(d) => !self.native.wait_for(guard, d).timed_out(),
        };
        self.native_waiters.fetch_sub(1, Ordering::SeqCst);
        woke
    }
}

impl Default for TxCondvar {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn waiter_notify_then_wait_returns_immediately() {
        let w = Waiter::new();
        w.notify();
        assert!(w.wait(None));
    }

    #[test]
    fn waiter_timeout_returns_false() {
        let w = Waiter::new();
        assert!(!w.wait(Some(Duration::from_millis(10))));
    }

    #[test]
    fn waiter_cross_thread_wakeup() {
        let w = Arc::new(Waiter::new());
        let w2 = Arc::clone(&w);
        let h = std::thread::spawn(move || w2.wait(Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(20));
        w.notify();
        assert!(h.join().unwrap());
    }

    #[test]
    fn notify_is_idempotent() {
        let w = Waiter::new();
        w.notify();
        w.notify();
        assert!(w.wait(None));
    }

    #[test]
    fn poll_signaled_arms_waker_and_wakes_on_notify() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::task::{Context, Poll, Wake, Waker};

        struct CountWake(AtomicUsize);
        impl Wake for CountWake {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let w = Waiter::new();
        let counter = Arc::new(CountWake(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&counter));
        let mut cx = Context::from_waker(&waker);
        assert_eq!(w.poll_signaled(&mut cx), Poll::Pending);
        assert!(!w.is_signaled());
        w.notify();
        assert_eq!(counter.0.load(Ordering::SeqCst), 1, "waker must fire");
        assert!(w.is_signaled());
        assert_eq!(w.poll_signaled(&mut cx), Poll::Ready(()));
        // Notify after the waker was consumed stays idempotent.
        w.notify();
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
    }
}
