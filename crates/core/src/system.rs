//! The top-level TLE system: algorithm mode, policy knobs, thread
//! registration, and the per-lock adaptive policy controller.

use crate::domain::{
    admission_decide, AdaptiveConfig, AdmissionConfig, ModeSwitchEvent, SwitchReason,
};
use crate::elide::{ElidableMutex, LockInner};
use crate::runner;
use crate::{TxCtx, TxError};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;
use tle_base::stats::{fmt_ns, LatencyHistSnapshot, TxStats, TxStatsSnapshot};
use tle_base::trace::{self, TraceKind, TxMode};
use tle_base::{AbortCause, Gate, OrecLayout};
use tle_htm::{HtmConfig, HtmGlobal};
use tle_stm::{QuiescePolicy, StmGlobal};

/// The five synchronization algorithms evaluated in the paper (§VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AlgoMode {
    /// The original pthread-style locking (no elision).
    Baseline = 0,
    /// STM elision; waiting degrades to polling in small transactions.
    StmSpin = 1,
    /// STM elision with transaction-friendly condition variables.
    StmCondvar = 2,
    /// `StmCondvar` plus selective quiescence disabling (`TM_NoQuiesce`).
    StmCondvarNoQuiesce = 3,
    /// Simulated-HTM elision with condition variables and serial fallback.
    HtmCondvar = 4,
    /// glibc-style adaptive lock elision (extension, not one of the
    /// paper's five): hardware transactions **subscribe to the lock word**
    /// and fall back to **the lock itself** (not global serialization);
    /// an adaptive skip counter disables elision on locks that keep
    /// aborting, exactly like glibc's `pthread_mutex_lock` elision.
    AdaptiveHtm = 5,
    /// [`AdaptiveHtm`](Self::AdaptiveHtm) with **safe lazy subscription**
    /// (Dice et al., "Hardware extensions to make lazy subscription
    /// safe"): the fallback lock word is *not* read at transaction begin —
    /// lock-path acquisitions therefore no longer abort every speculating
    /// reader of that line. Safety is restored by three ordered guards:
    /// begin refuses to speculate while the lock's acquisition seqlock is
    /// odd (held), the lock path dooms every active transaction on acquire
    /// (zombies cannot run on), and the seqlock is re-checked immediately
    /// before the commit point, proving the lock was free for the whole
    /// speculation window. Never a controller target — strictly opt-in.
    AdaptiveHtmLazy = 6,
    /// **Naive** lazy subscription — the literature's unsafe strawman: the
    /// lock word is read only once, just before commit, with no
    /// doom-on-acquire and no whole-window check. Exists so the model
    /// checker can demonstrate the hazard catalog (DESIGN.md §17) on a
    /// real mode. Compiled only into dev/check builds (`debug_assertions`,
    /// tests, or the `unsafe-modes` feature); release binaries reject any
    /// construction of it at compile time. Never a controller target.
    #[cfg(any(test, debug_assertions, feature = "unsafe-modes"))]
    AdaptiveHtmLazyUnsafe = 7,
}

/// Error returned when a byte is not a valid [`AlgoMode`] discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidAlgoMode(pub u8);

impl std::fmt::Display for InvalidAlgoMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid AlgoMode discriminant {}", self.0)
    }
}

impl std::error::Error for InvalidAlgoMode {}

impl TryFrom<u8> for AlgoMode {
    type Error = InvalidAlgoMode;

    fn try_from(v: u8) -> Result<Self, InvalidAlgoMode> {
        match v {
            0 => Ok(AlgoMode::Baseline),
            1 => Ok(AlgoMode::StmSpin),
            2 => Ok(AlgoMode::StmCondvar),
            3 => Ok(AlgoMode::StmCondvarNoQuiesce),
            4 => Ok(AlgoMode::HtmCondvar),
            5 => Ok(AlgoMode::AdaptiveHtm),
            6 => Ok(AlgoMode::AdaptiveHtmLazy),
            #[cfg(any(test, debug_assertions, feature = "unsafe-modes"))]
            7 => Ok(AlgoMode::AdaptiveHtmLazyUnsafe),
            other => Err(InvalidAlgoMode(other)),
        }
    }
}

/// Error returned when a string names no [`AlgoMode`]; carries the
/// offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAlgoModeError(pub String);

impl std::fmt::Display for ParseAlgoModeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown algorithm mode {:?} (expected one of: baseline, stm-spin, \
             stm-condvar, stm-noquiesce, htm, adaptive-htm, adaptive-htm-lazy, \
             adaptive-htm-lazy-unsafe [dev/check builds only])",
            self.0
        )
    }
}

impl std::error::Error for ParseAlgoModeError {}

impl std::str::FromStr for AlgoMode {
    type Err = ParseAlgoModeError;

    /// Parse the CLI spellings used by the `tle-torture`/`tle-trace`
    /// binaries (aliases included).
    fn from_str(s: &str) -> Result<Self, ParseAlgoModeError> {
        match s {
            "baseline" | "pthread" => Ok(AlgoMode::Baseline),
            "stm-spin" | "spin" => Ok(AlgoMode::StmSpin),
            "stm" | "stm-condvar" => Ok(AlgoMode::StmCondvar),
            "stm-noquiesce" | "stm-condvar-noquiesce" | "noquiesce" => {
                Ok(AlgoMode::StmCondvarNoQuiesce)
            }
            "htm" | "htm-condvar" => Ok(AlgoMode::HtmCondvar),
            "adaptive-htm" | "adaptive" | "glibc" => Ok(AlgoMode::AdaptiveHtm),
            "adaptive-htm-lazy" | "lazy" => Ok(AlgoMode::AdaptiveHtmLazy),
            #[cfg(any(test, debug_assertions, feature = "unsafe-modes"))]
            "adaptive-htm-lazy-unsafe" | "lazy-unsafe" => Ok(AlgoMode::AdaptiveHtmLazyUnsafe),
            other => Err(ParseAlgoModeError(other.to_string())),
        }
    }
}

impl AlgoMode {
    /// Label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            AlgoMode::Baseline => "pthread",
            AlgoMode::StmSpin => "STM+Spin",
            AlgoMode::StmCondvar => "STM+CondVar",
            AlgoMode::StmCondvarNoQuiesce => "STM+CondVar+NoQuiesce",
            AlgoMode::HtmCondvar => "HTM+CondVar",
            AlgoMode::AdaptiveHtm => "AdaptiveHTM(glibc)",
            AlgoMode::AdaptiveHtmLazy => "AdaptiveHTM(lazy)",
            #[cfg(any(test, debug_assertions, feature = "unsafe-modes"))]
            AlgoMode::AdaptiveHtmLazyUnsafe => "AdaptiveHTM(lazy-unsafe)",
        }
    }

    /// The quiescence policy this algorithm implies for its STM domain.
    pub fn quiesce_policy(self) -> QuiescePolicy {
        match self {
            AlgoMode::StmCondvarNoQuiesce => QuiescePolicy::Selective,
            _ => QuiescePolicy::Always,
        }
    }

    /// Whether this mode runs critical sections as transactions.
    pub fn is_transactional(self) -> bool {
        !matches!(self, AlgoMode::Baseline)
    }

    /// Whether this mode is glibc-family adaptive elision: hardware
    /// transactions fall back to **the lock itself** rather than the
    /// global serial gate ([`AdaptiveHtm`](Self::AdaptiveHtm) and the two
    /// lazy-subscription variants).
    pub fn is_glibc_family(self) -> bool {
        match self {
            AlgoMode::AdaptiveHtm | AlgoMode::AdaptiveHtmLazy => true,
            #[cfg(any(test, debug_assertions, feature = "unsafe-modes"))]
            AlgoMode::AdaptiveHtmLazyUnsafe => true,
            _ => false,
        }
    }

    /// Whether this mode defers its fallback-lock subscription to commit
    /// time instead of reading the lock word at transaction begin.
    pub fn is_lazy(self) -> bool {
        match self {
            AlgoMode::AdaptiveHtmLazy => true,
            #[cfg(any(test, debug_assertions, feature = "unsafe-modes"))]
            AlgoMode::AdaptiveHtmLazyUnsafe => true,
            _ => false,
        }
    }

    /// Whether this is the naive lazy variant, which omits every safety
    /// guard (dev/check builds only; always `false` in release builds,
    /// where the variant does not exist).
    pub fn is_lazy_unsafe(self) -> bool {
        match self {
            #[cfg(any(test, debug_assertions, feature = "unsafe-modes"))]
            AlgoMode::AdaptiveHtmLazyUnsafe => true,
            _ => false,
        }
    }
}

/// Retry/fallback policy knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlePolicy {
    /// Hardware attempts before serializing. The paper's configuration is
    /// **2** ("fall back to a serial mode after hardware transactions fail
    /// twice") and §VII-A calls tuning this knob out as future work — see
    /// the `ablate_htm_retry` bench.
    pub htm_retries: u32,
    /// Software attempts before serializing (GCC uses a similar abort-storm
    /// escape hatch).
    pub stm_retries: u32,
    /// Exponential-backoff ceiling (spins) between software retries.
    pub backoff_ceiling: u32,
    /// Starvation-escalation ladder: a thread whose *consecutive* aborts
    /// (accumulated across critical sections, reset by any concurrent
    /// commit) reach this bound is granted one serial-irrevocable slot —
    /// guaranteed progress for a thread the retry/fallback policy alone
    /// keeps starving. The default (2× `stm_retries`) only fires under
    /// persistent cross-section abort storms, so the paper-mode fallback
    /// behaviour is unchanged in ordinary runs.
    pub escalation_bound: u32,
}

impl Default for TlePolicy {
    fn default() -> Self {
        TlePolicy {
            htm_retries: 2,
            stm_retries: 64,
            backoff_ceiling: 1 << 12,
            escalation_bound: 128,
        }
    }
}

/// Per-critical-section overrides of the global [`TlePolicy`] — the
/// transaction-by-transaction retry tuning the paper's §VII-A asks for.
///
/// Build fluently from the default:
///
/// ```
/// use tle_core::TxHints;
/// let hints = TxHints::new().with_htm_retries(8).with_stm_retries(128);
/// assert_eq!(hints.htm_retries, Some(8));
/// assert_eq!(hints.stm_retries, Some(128));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxHints {
    /// Override the hardware-retry budget for this section.
    pub htm_retries: Option<u32>,
    /// Override the software-retry budget for this section.
    pub stm_retries: Option<u32>,
    /// Retry-time budget for this section, measured from dispatch. The
    /// runner checks it before every retry tier and serial-gate entry and
    /// clamps condvar waits to the remainder. Under
    /// [`ThreadHandle::try_critical_with`] expiry surfaces as
    /// [`TxError::DeadlineExceeded`]; under the infallible
    /// [`ThreadHandle::critical_with`] it forces the serial path instead
    /// (bounded retry time, no error channel needed).
    pub deadline: Option<Duration>,
}

impl TxHints {
    /// No overrides (same as `TxHints::default()`); starting point for the
    /// fluent setters.
    pub fn new() -> Self {
        TxHints::default()
    }

    /// Override the hardware-retry budget for this section.
    pub fn with_htm_retries(mut self, n: u32) -> Self {
        self.htm_retries = Some(n);
        self
    }

    /// Override the software-retry budget for this section.
    pub fn with_stm_retries(mut self, n: u32) -> Self {
        self.stm_retries = Some(n);
        self
    }

    /// Give this section a retry-time budget (see
    /// [`TxHints::deadline`]).
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Hint more (or fewer) hardware retries.
    #[deprecated(since = "0.4.0", note = "use TxHints::new().with_htm_retries(n)")]
    pub fn htm_retries(n: u32) -> Self {
        TxHints::new().with_htm_retries(n)
    }

    /// Hint more (or fewer) software retries.
    #[deprecated(since = "0.4.0", note = "use TxHints::new().with_stm_retries(n)")]
    pub fn stm_retries(n: u32) -> Self {
        TxHints::new().with_stm_retries(n)
    }
}

/// `(htm_retries, stm_retries)` shorthand for
/// [`ThreadHandle::critical_with`].
impl From<(u32, u32)> for TxHints {
    fn from((htm, stm): (u32, u32)) -> Self {
        TxHints::new().with_htm_retries(htm).with_stm_retries(stm)
    }
}

/// Staged configuration for a [`TmSystem`] (see [`TmSystem::builder`]).
///
/// Defaults reproduce `TmSystem::new(AlgoMode::HtmCondvar)`: default
/// [`TlePolicy`], default [`HtmConfig`], adaptation off.
#[derive(Debug, Clone, Default)]
pub struct TmSystemBuilder {
    mode: Option<AlgoMode>,
    policy: TlePolicy,
    htm_cfg: HtmConfig,
    adaptive: Option<AdaptiveConfig>,
    admission: Option<AdmissionConfig>,
    orec_layout: OrecLayout,
    /// `None` keeps the STM default (on); benches set `Some(false)` for
    /// before/after runs.
    ro_fast_path: Option<bool>,
}

impl TmSystemBuilder {
    /// The algorithm every lock inherits (default:
    /// [`AlgoMode::HtmCondvar`]).
    pub fn mode(mut self, mode: AlgoMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Retry/fallback policy knobs.
    pub fn policy(mut self, policy: TlePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Simulated-hardware configuration.
    pub fn htm_config(mut self, cfg: HtmConfig) -> Self {
        self.htm_cfg = cfg;
        self
    }

    /// Enable (with default thresholds) or disable the per-lock adaptive
    /// controller.
    pub fn adaptive(mut self, on: bool) -> Self {
        self.adaptive = if on {
            Some(AdaptiveConfig::default())
        } else {
            None
        };
        self
    }

    /// Enable the per-lock adaptive controller with explicit thresholds.
    pub fn adaptive_config(mut self, cfg: AdaptiveConfig) -> Self {
        self.adaptive = Some(cfg);
        self
    }

    /// Enable (with default thresholds) or disable the per-lock admission
    /// controller — the elide → serialize → shed degradation ladder (see
    /// [`crate::admission_decide`]). Adopted locks are stepped by
    /// [`TmSystem::controller_step`].
    pub fn admission(mut self, on: bool) -> Self {
        self.admission = if on {
            Some(AdmissionConfig::default())
        } else {
            None
        };
        self
    }

    /// Enable the per-lock admission controller with explicit thresholds.
    pub fn admission_config(mut self, cfg: AdmissionConfig) -> Self {
        self.admission = Some(cfg);
        self
    }

    /// Physical layout of the STM orec table (default: padded, one orec per
    /// cache line). The compact layout exists so benches can measure the
    /// false-sharing cost it removes.
    pub fn orec_layout(mut self, layout: OrecLayout) -> Self {
        self.orec_layout = layout;
        self
    }

    /// Enable/disable the read-only STM commit fast path (default: on).
    pub fn ro_commit_fast_path(mut self, on: bool) -> Self {
        self.ro_fast_path = Some(on);
        self
    }

    /// Assemble the runtime.
    pub fn build(self) -> TmSystem {
        let mode = self.mode.unwrap_or(AlgoMode::HtmCondvar);
        let stm = StmGlobal::with_layout(mode.quiesce_policy(), self.orec_layout);
        if let Some(on) = self.ro_fast_path {
            stm.set_ro_commit_fast_path(on);
        }
        TmSystem {
            stm,
            htm: HtmGlobal::new(self.htm_cfg),
            gate: Gate::new(),
            stats: TxStats::new(),
            mode: AtomicU8::new(mode as u8),
            policy: self.policy,
            adaptive: self.adaptive,
            admission: self.admission,
            locks: parking_lot::Mutex::new(Vec::new()),
            switch_log: parking_lot::Mutex::new(Vec::new()),
            ctrl_steps: AtomicU64::new(0),
        }
    }
}

/// The assembled TLE runtime. One instance per process/benchmark-trial;
/// applications share it via `Arc`.
pub struct TmSystem {
    /// The software TM domain.
    pub stm: StmGlobal,
    /// The simulated hardware TM domain.
    pub htm: HtmGlobal,
    /// The serialization gate (irrevocability + fallback).
    pub gate: Gate,
    /// TLE-level statistics (serial fallbacks are counted here).
    pub stats: TxStats,
    mode: AtomicU8,
    policy: TlePolicy,
    /// Controller thresholds; `None` when adaptation is off.
    adaptive: Option<AdaptiveConfig>,
    /// Admission-ladder thresholds; `None` when admission control is off.
    admission: Option<AdmissionConfig>,
    /// Locks adopted into the controller (weak: the application owns them).
    locks: parking_lot::Mutex<Vec<Weak<LockInner>>>,
    /// Every per-lock mode switch, in application order.
    switch_log: parking_lot::Mutex<Vec<ModeSwitchEvent>>,
    /// Controller step counter (timestamps switch events).
    ctrl_steps: AtomicU64,
}

impl TmSystem {
    /// Start configuring a system (see [`TmSystemBuilder`]).
    pub fn builder() -> TmSystemBuilder {
        TmSystemBuilder::default()
    }

    /// Build a system running algorithm `mode` with default policy
    /// (sugar for `TmSystem::builder().mode(mode).build()`).
    pub fn new(mode: AlgoMode) -> Self {
        Self::builder().mode(mode).build()
    }

    /// Build a system with explicit policy and HTM configuration.
    #[deprecated(
        since = "0.4.0",
        note = "use TmSystem::builder().mode(..).policy(..).htm_config(..).build()"
    )]
    pub fn with_policy(mode: AlgoMode, policy: TlePolicy, htm_cfg: HtmConfig) -> Self {
        Self::builder()
            .mode(mode)
            .policy(policy)
            .htm_config(htm_cfg)
            .build()
    }

    /// The global algorithm (locks may carry per-lock overrides; see
    /// [`ElidableMutex::resolved_mode`]).
    #[inline]
    pub fn mode(&self) -> AlgoMode {
        AlgoMode::try_from(self.mode.load(Ordering::Relaxed)).expect("corrupt mode byte")
    }

    /// Switch the global algorithm. Only call between phases (no
    /// transactions in flight); benchmarks use this to sweep modes over one
    /// data set. Per-lock overrides installed by the controller or
    /// [`TmSystem::set_lock_mode`] are unaffected.
    pub fn set_mode(&self, mode: AlgoMode) {
        self.mode.store(mode as u8, Ordering::Relaxed);
        self.stm.set_policy(mode.quiesce_policy());
    }

    /// The retry/fallback policy.
    #[inline]
    pub fn policy(&self) -> &TlePolicy {
        &self.policy
    }

    /// Whether the per-lock adaptive controller is configured.
    #[inline]
    pub fn adaptive_enabled(&self) -> bool {
        self.adaptive.is_some()
    }

    /// The controller thresholds, when adaptation is on.
    pub fn adaptive_config(&self) -> Option<&AdaptiveConfig> {
        self.adaptive.as_ref()
    }

    /// Whether the per-lock admission controller is configured.
    #[inline]
    pub fn admission_enabled(&self) -> bool {
        self.admission.is_some()
    }

    /// The admission-ladder thresholds, when admission control is on.
    pub fn admission_config(&self) -> Option<&AdmissionConfig> {
        self.admission.as_ref()
    }

    /// Select the software-TM algorithm (`ml_wt`, the paper's; or NOrec,
    /// the privatization-safe-by-construction ablation). Takes effect for
    /// subsequently started transactions; switch only between phases.
    pub fn set_stm_algo(&self, algo: tle_stm::StmAlgo) {
        self.stm.set_algo(algo);
    }

    /// Adopt `lock` into the adaptive/admission controllers: subsequent
    /// [`controller_step`](TmSystem::controller_step) calls sample its
    /// outcome window and may switch its mode (adaptive) or move it along
    /// the elide → serialize → shed ladder (admission). Idempotent; a no-op
    /// when the system was built without [`TmSystemBuilder::adaptive`] or
    /// [`TmSystemBuilder::admission`].
    pub fn adopt_lock(&self, lock: &ElidableMutex) {
        if !self.adaptive_enabled() && !self.admission_enabled() {
            return;
        }
        let inner = lock.inner();
        let mut locks = self.locks.lock();
        if locks.iter().any(|w| w.as_ptr() == Arc::as_ptr(inner)) {
            return;
        }
        inner.domain().set_adopted();
        locks.push(Arc::downgrade(inner));
    }

    /// Manually pin `lock` to `mode`, overriding the global algorithm (and
    /// suspending the controller's opinion until its next decision). Uses
    /// the full mode-flip exclusion protocol, so it is safe while worker
    /// threads are running — but must not be called from inside a critical
    /// section (it would self-deadlock on the serialization gate).
    ///
    /// Pinning [`AlgoMode::StmCondvarNoQuiesce`] counts as the per-lock
    /// `TM_NoQuiesce` opt-in (it is an explicit application assertion).
    pub fn set_lock_mode(&self, lock: &ElidableMutex, mode: AlgoMode) {
        if mode == AlgoMode::StmCondvarNoQuiesce {
            self.opt_in_no_quiesce(lock);
        }
        self.flip_lock(lock.inner(), Some(mode), SwitchReason::Manual);
    }

    /// Remove `lock`'s per-lock override so it inherits the global
    /// algorithm again. Same exclusion protocol as
    /// [`set_lock_mode`](TmSystem::set_lock_mode).
    pub fn clear_lock_mode(&self, lock: &ElidableMutex) {
        self.flip_lock(lock.inner(), None, SwitchReason::Manual);
    }

    /// Per-lock `TM_NoQuiesce` opt-in: every software transaction under
    /// `lock` asserts it does not privatize, skipping the post-commit
    /// quiescence drain. This is a **correctness contract** the application
    /// makes (paper §IV-B); the adaptive controller never infers it.
    pub fn set_lock_no_quiesce(&self, lock: &ElidableMutex, on: bool) {
        if on {
            self.opt_in_no_quiesce(lock);
        } else {
            lock.domain().set_no_quiesce(false);
        }
    }

    fn opt_in_no_quiesce(&self, lock: &ElidableMutex) {
        lock.domain().set_no_quiesce(true);
        // The per-transaction assertion only matters under the Selective
        // policy; upgrade a default Always domain so the opt-in takes
        // effect (Never is left alone — it already skips every drain).
        if self.stm.policy() == QuiescePolicy::Always {
            self.stm.set_policy(QuiescePolicy::Selective);
        }
    }

    /// Install (or clear) a per-lock mode override under **total
    /// exclusion**: serial gate (drains and blocks every concurrent and
    /// serial transactional section), the raw mutex (blocks baseline
    /// sections), and the adaptive lock word (blocks glibc-style lock-path
    /// holders and dooms subscribed hardware transactions). The domain
    /// epoch is bumped inside the exclusion; runners re-check it after
    /// taking their own foothold and re-dispatch on mismatch.
    fn flip_lock(&self, inner: &Arc<LockInner>, to: Option<AlgoMode>, reason: SwitchReason) {
        let serial = self.gate.enter_serial();
        let guard = inner.raw().lock();
        // Adaptive word: same acquisition as the glibc lock path.
        let word = inner.held_cell().word();
        let mut spins = 0u32;
        while word
            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        self.htm.invalidate(inner.held_cell());
        // Lazy modes never subscribe the word's line, so the invalidation
        // above cannot reach them: bump the acquisition seqlock (new lazy
        // begins refuse) and sweep-doom every active transaction. Flips are
        // rare, so doing this unconditionally (rather than only when the
        // old or new resolved mode is lazy) costs nothing.
        inner.seq_bump();
        self.htm.doom_all_active();

        let domain = inner.domain();
        let from = domain.resolved(self.mode());
        domain.set_override(to);
        let to_mode = domain.resolved(self.mode());
        domain.bump_epoch();
        domain.window.reset();
        domain.reset_dwell();
        domain.set_last_reason(reason);

        if from != to_mode {
            domain.note_switch();
            let step = self.ctrl_steps.load(Ordering::SeqCst);
            let cause = match reason {
                SwitchReason::Capacity => Some(AbortCause::Capacity),
                SwitchReason::ConflictStorm => Some(AbortCause::Conflict),
                _ => None,
            };
            trace::emit(
                TraceKind::ModeSwitch,
                TxMode::Serial,
                cause,
                ((from as u64) << 8) | to_mode as u64,
            );
            self.switch_log.lock().push(ModeSwitchEvent {
                step,
                lock: inner.name().to_string(),
                from,
                to: to_mode,
                reason,
            });
        }

        inner.held_cell().store_direct(false);
        // Restore even parity: lazy speculation may resume.
        inner.seq_bump();
        drop(guard);
        drop(serial);
    }

    /// One controller sampling step over every adopted lock: bump dwell,
    /// snapshot the window, apply [`crate::decide`] (mode adaptation) and
    /// [`crate::admission_decide`] (degradation ladder), and either flip the
    /// lock (which resets its window) or advance its window ring. Returns
    /// the number of locks switched or re-stepped this step. Call from a
    /// management thread (never from inside a critical section), or let
    /// [`start_controller`](TmSystem::start_controller) drive it.
    pub fn controller_step(&self) -> usize {
        if self.adaptive.is_none() && self.admission.is_none() {
            return 0;
        }
        self.ctrl_steps.fetch_add(1, Ordering::SeqCst);
        let live: Vec<Arc<LockInner>> = {
            let mut locks = self.locks.lock();
            locks.retain(|w| w.strong_count() > 0);
            locks.iter().filter_map(|w| w.upgrade()).collect()
        };
        let mut switched = 0;
        for inner in live {
            let domain = inner.domain();
            let snap = domain.window.snapshot();
            let mut flipped = false;
            if let Some(cfg) = self.adaptive.as_ref() {
                let mode = domain.resolved(self.mode());
                let dwelled = domain.bump_dwell();
                if let Some((to, reason)) =
                    crate::domain::decide(mode, &snap, dwelled, domain.last_reason(), cfg)
                {
                    self.flip_lock(&inner, Some(to), reason);
                    switched += 1;
                    flipped = true;
                }
            }
            if let Some(cfg) = self.admission.as_ref() {
                let step = domain.admission_step();
                let dwelled = domain.bump_adm_dwell();
                let peak = domain.take_queue_peak();
                if let Some(next) = admission_decide(step, &snap, peak, dwelled, cfg) {
                    domain.set_admission_step(next);
                    switched += 1;
                }
            }
            // A mode flip already reset the window inside its exclusion
            // section; rolling here would discard a fresh (empty) slice.
            if !flipped {
                domain.window.roll();
            }
        }
        switched
    }

    /// Spawn a background thread calling
    /// [`controller_step`](TmSystem::controller_step) every `interval`.
    /// The returned handle stops and joins the thread when dropped.
    pub fn start_controller(self: &Arc<Self>, interval: Duration) -> ControllerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let sys = Arc::clone(self);
        let flag = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("tle-adapt".into())
            .spawn(move || {
                while !flag.load(Ordering::SeqCst) {
                    std::thread::sleep(interval);
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    sys.controller_step();
                }
            })
            .expect("spawn adaptive controller thread");
        ControllerHandle {
            stop,
            join: Some(join),
        }
    }

    /// Every per-lock mode switch so far, in application order
    /// (controller decisions and manual pins alike).
    pub fn mode_switches(&self) -> Vec<ModeSwitchEvent> {
        self.switch_log.lock().clone()
    }

    /// Register the calling thread, claiming STM and HTM slots. The handle
    /// is the capability through which critical sections run.
    pub fn register(self: &Arc<Self>) -> ThreadHandle {
        match self.try_register() {
            Some(th) => th,
            None => panic!("out of STM/HTM thread slots"),
        }
    }

    /// Fallible twin of [`register`](TmSystem::register): `None` when the
    /// slot registries are exhausted instead of panicking. The async runner
    /// uses this to claim *transient* slots per critical section (thousands
    /// of logical sessions share a bounded slot pool), backing off with a
    /// scheduler yield until a slot frees up.
    pub fn try_register(self: &Arc<Self>) -> Option<ThreadHandle> {
        let stm_slot = self.stm.slots.register_raw()?;
        let htm_slot = match self.htm.slots.register_raw() {
            Some(s) => s,
            None => {
                self.stm.slots.unregister_raw(stm_slot);
                return None;
            }
        };
        Some(ThreadHandle {
            sys: Arc::clone(self),
            stm_slot,
            htm_slot,
            consec_aborts: AtomicU32::new(0),
        })
    }

    /// Reset all statistics — any recorded trace events and the mode-switch
    /// log included — between benchmark trials.
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.stm.stats.reset();
        self.htm.stats.reset();
        self.switch_log.lock().clear();
        tle_base::trace::clear();
    }

    /// Snapshot every domain's counters at once.
    pub fn domain_stats(&self) -> DomainStats {
        DomainStats {
            mode: self.mode(),
            tle: self.stats.snapshot(),
            stm: self.stm.stats.snapshot(),
            htm: self.htm.stats.tx.snapshot(),
        }
    }

    /// Render the Figure-4-style abort breakdown for the current counters,
    /// plus a per-lock section for adopted locks (resolved mode, window
    /// contents, switch count).
    pub fn report(&self) -> String {
        let mut out = self.domain_stats().report();
        let live: Vec<Arc<LockInner>> = self
            .locks
            .lock()
            .iter()
            .filter_map(|w| w.upgrade())
            .collect();
        if !live.is_empty() {
            let _ = writeln!(
                out,
                "  {:<18} {:>22} {:>8} {:>8} {:>8} {:>8}",
                "lock", "mode", "commits", "aborts", "serial", "switches"
            );
            for inner in live {
                let d = inner.domain();
                let s = d.window.snapshot();
                let _ = writeln!(
                    out,
                    "  {:<18} {:>22} {:>8} {:>8} {:>8} {:>8}",
                    inner.name(),
                    d.resolved(self.mode()).label(),
                    s.commits,
                    s.aborts(),
                    s.serial,
                    d.switch_count()
                );
            }
        }
        let switches = self.switch_log.lock();
        if !switches.is_empty() {
            let _ = writeln!(out, "  mode switches: {}", switches.len());
            for ev in switches.iter() {
                let _ = writeln!(out, "    {ev}");
            }
        }
        out
    }
}

/// Owner of the background adaptive-controller thread (see
/// [`TmSystem::start_controller`]); stops and joins it on drop.
pub struct ControllerHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ControllerHandle {
    /// Stop the controller thread and wait for it to exit.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ControllerHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

/// A point-in-time view of every domain's statistics.
///
/// [`DomainStats::report`] renders the measured equivalent of the paper's
/// Figure 4: per-domain commit/abort totals and a per-cause abort breakdown,
/// plus quiescence-drain latency when the STM domain drained.
#[derive(Debug, Clone, Copy)]
pub struct DomainStats {
    /// Algorithm active when the snapshot was taken.
    pub mode: AlgoMode,
    /// TLE-runtime counters (serial commits and fallbacks).
    pub tle: TxStatsSnapshot,
    /// Software-TM domain counters.
    pub stm: TxStatsSnapshot,
    /// Simulated-hardware domain counters.
    pub htm: TxStatsSnapshot,
}

impl DomainStats {
    /// The STM drain-latency distribution (shortcut for plots/tests).
    pub fn quiesce_hist(&self) -> &LatencyHistSnapshot {
        &self.stm.quiesce_hist
    }

    /// Total aborts of `cause` across the STM and HTM domains.
    pub fn cause(&self, cause: AbortCause) -> u64 {
        self.stm.cause(cause) + self.htm.cause(cause)
    }

    /// Render a Figure-4-style table: per-domain totals, then one row per
    /// abort cause that actually occurred.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "abort breakdown [{}]", self.mode.label());
        let _ = writeln!(
            out,
            "  {:<18} {:>12} {:>12} {:>8}",
            "domain", "commits", "aborts", "abort%"
        );
        for (name, s) in [
            ("stm", &self.stm),
            ("htm", &self.htm),
            ("serial", &self.tle),
        ] {
            let _ = writeln!(
                out,
                "  {:<18} {:>12} {:>12} {:>7.2}%",
                name,
                s.commits,
                s.aborts,
                s.abort_rate() * 100.0
            );
        }
        let _ = writeln!(out, "  serial fallbacks: {}", self.tle.serial_fallbacks);
        let _ = writeln!(out, "  {:<18} {:>12} {:>12}", "cause", "stm", "htm");
        for c in AbortCause::ALL {
            let (s, h) = (self.stm.cause(c), self.htm.cause(c));
            if s == 0 && h == 0 {
                continue;
            }
            let _ = writeln!(out, "  {:<18} {:>12} {:>12}", c.label(), s, h);
        }
        if self.stm.quiesces > 0 {
            let _ = writeln!(
                out,
                "  quiesce drains: {} skipped: {} wait: {} ({})",
                self.stm.quiesces,
                self.stm.quiesce_skipped,
                fmt_ns(self.stm.quiesce_wait_ns),
                self.stm.quiesce_hist.summary()
            );
        }
        out
    }
}

/// A registered thread's capability to run elided critical sections.
///
/// `Sync` by construction (all interior state is atomic): the async entry
/// points hold `&ThreadHandle` across `.await` points, so the futures they
/// return must be `Send`. Nested-section detection lives in a thread-local
/// inside the runner (see `runner::NestGuard`), not in the handle — it
/// guards *closure re-entry on one OS thread*, which is exactly what a
/// thread-local scoped to the synchronous closure call expresses, and it
/// keeps working when one handle is shared across executor workers.
pub struct ThreadHandle {
    pub(crate) sys: Arc<TmSystem>,
    pub(crate) stm_slot: usize,
    pub(crate) htm_slot: usize,
    /// Consecutive concurrent-attempt aborts, across critical sections;
    /// input to the starvation-escalation ladder
    /// ([`TlePolicy::escalation_bound`]).
    pub(crate) consec_aborts: AtomicU32,
}

impl ThreadHandle {
    /// The system this handle belongs to.
    #[inline]
    pub fn system(&self) -> &Arc<TmSystem> {
        &self.sys
    }

    /// This thread's STM slot index (used as a statistics shard hint).
    #[inline]
    pub fn shard(&self) -> usize {
        self.stm_slot
    }

    /// Current consecutive-abort count (starvation-ladder diagnostics; see
    /// [`TlePolicy::escalation_bound`]).
    #[inline]
    pub fn consecutive_aborts(&self) -> u32 {
        self.consec_aborts.load(Ordering::Relaxed)
    }

    /// Start building a critical-section request on `lock`.
    ///
    /// This is the unified entry point: configure with
    /// [`hints`](TxRequest::hints) / [`deadline_us`](TxRequest::deadline_us),
    /// then finish with one terminal — [`run`](TxRequest::run) (infallible),
    /// [`try_run`](TxRequest::try_run) (deadline/shed surface as `Err`), or
    /// their async twins [`run_async`](TxRequest::run_async) /
    /// [`try_run_async`](TxRequest::try_run_async).
    ///
    /// ```
    /// # use std::sync::Arc;
    /// use tle_core::{AlgoMode, ElidableMutex, TmSystem};
    /// let sys = Arc::new(TmSystem::new(AlgoMode::HtmCondvar));
    /// let th = sys.register();
    /// let lock = ElidableMutex::new("doc");
    /// let r = th.tx(&lock).run(|_ctx| Ok(42));
    /// assert_eq!(r, 42);
    /// ```
    #[inline]
    pub fn tx<'a>(&'a self, lock: &'a ElidableMutex) -> TxRequest<'a> {
        TxRequest {
            th: self,
            lock,
            hints: TxHints::default(),
        }
    }

    /// Run `body` as the critical section guarded by `lock`.
    #[deprecated(since = "0.8.0", note = "use tx(lock).run(body)")]
    #[inline]
    pub fn critical<'a, R>(
        &'a self,
        lock: &'a ElidableMutex,
        body: impl FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
    ) -> R {
        self.tx(lock).run(body)
    }

    /// Like `critical`, with per-section policy hints.
    #[deprecated(since = "0.8.0", note = "use tx(lock).hints(h).run(body)")]
    #[inline]
    pub fn critical_with<'a, R>(
        &'a self,
        lock: &'a ElidableMutex,
        hints: impl Into<TxHints>,
        body: impl FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
    ) -> R {
        self.tx(lock).hints(hints).run(body)
    }

    /// Like `critical`, but fallible (see [`TxRequest::try_run`]).
    #[deprecated(since = "0.8.0", note = "use tx(lock).try_run(body)")]
    #[inline]
    pub fn try_critical<'a, R>(
        &'a self,
        lock: &'a ElidableMutex,
        body: impl FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
    ) -> Result<R, TxError> {
        self.tx(lock).try_run(body)
    }

    /// Like `try_critical`, with per-section policy hints.
    #[deprecated(since = "0.8.0", note = "use tx(lock).hints(h).try_run(body)")]
    #[inline]
    pub fn try_critical_with<'a, R>(
        &'a self,
        lock: &'a ElidableMutex,
        hints: impl Into<TxHints>,
        body: impl FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
    ) -> Result<R, TxError> {
        self.tx(lock).hints(hints).try_run(body)
    }

    /// Like `critical`, with per-section policy hints.
    #[deprecated(since = "0.4.0", note = "use tx(lock).hints(h).run(body)")]
    pub fn critical_hinted<'a, R>(
        &'a self,
        lock: &'a ElidableMutex,
        hints: TxHints,
        body: impl FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
    ) -> R {
        self.tx(lock).hints(hints).run(body)
    }
}

/// A critical-section request under construction: the lock, the policy
/// hints, and (once a terminal is called) the body. Built by
/// [`ThreadHandle::tx`]; consumed by one of the four terminals.
///
/// Under [`AlgoMode::Baseline`] the terminals acquire the real mutex; under
/// the TM modes they elide the lock and execute the body transactionally,
/// retrying on conflicts and falling back to global serialization per the
/// [`TlePolicy`]. The algorithm is the lock's *resolved* mode: its per-lock
/// override when the adaptive controller (or [`TmSystem::set_lock_mode`])
/// installed one, else the global mode. The body may run many times and
/// must be free of non-transactional side effects (use [`TxCtx::defer`]
/// for I/O-style effects, or [`TxCtx::unsafe_op`] to force irrevocability).
///
/// The body closure is always **synchronous**, even under the async
/// terminals: an atomic block never suspends mid-speculation (that would
/// pin orecs/lines across arbitrary scheduling delays — see `tle-lint`
/// rule R6). The async terminals suspend only *between* attempts: gate
/// entry, condvar waits, quiescence drains, and backoff.
#[must_use = "a TxRequest does nothing until a terminal (`run`, `try_run`, `run_async`, `try_run_async`) consumes it"]
pub struct TxRequest<'a> {
    pub(crate) th: &'a ThreadHandle,
    pub(crate) lock: &'a ElidableMutex,
    pub(crate) hints: TxHints,
}

impl<'a> TxRequest<'a> {
    /// Attach per-section policy hints (anything [`Into<TxHints>`], e.g. a
    /// `TxHints` value or an `(htm_retries, stm_retries)` pair).
    ///
    /// This implements the tuning interface the paper calls for in §VII-A
    /// ("it would be beneficial for programmers to be able to suggest retry
    /// policies on a transaction-by-transaction basis: for queues that are
    /// expected to be un-contended, more retries before serialization might
    /// be appropriate") — a capability the C++ TMTS does not offer.
    #[inline]
    pub fn hints(mut self, hints: impl Into<TxHints>) -> Self {
        let h: TxHints = hints.into();
        // Merge instead of replace so `.deadline_us(..).hints(..)` and the
        // reverse order agree: explicit fields win, unset fields keep what
        // the request already had.
        self.hints = TxHints {
            htm_retries: h.htm_retries.or(self.hints.htm_retries),
            stm_retries: h.stm_retries.or(self.hints.stm_retries),
            deadline: h.deadline.or(self.hints.deadline),
        };
        self
    }

    /// Give the section a time budget of `us` microseconds (shorthand for
    /// `hints(TxHints::new().with_deadline(..))`). Under [`run`] an expired
    /// budget forces the serial path; under [`try_run`] it surfaces as
    /// [`TxError::DeadlineExceeded`]. The budget also clamps transactional
    /// condvar waits.
    ///
    /// ```
    /// # use std::sync::Arc;
    /// use tle_core::{AlgoMode, ElidableMutex, TmSystem};
    /// let sys = Arc::new(TmSystem::new(AlgoMode::HtmCondvar));
    /// let th = sys.register();
    /// let lock = ElidableMutex::new("doc");
    /// let r = th.tx(&lock).deadline_us(5_000).try_run(|_ctx| Ok(42));
    /// assert_eq!(r.unwrap(), 42);
    /// ```
    ///
    /// [`run`]: TxRequest::run
    /// [`try_run`]: TxRequest::try_run
    #[inline]
    pub fn deadline_us(mut self, us: u64) -> Self {
        self.hints.deadline = Some(Duration::from_micros(us));
        self
    }

    /// Run the section, infallibly: deadline expiry serializes instead of
    /// erroring and an admission shed degrades to serialization, so the
    /// caller always gets the body's `Ok` value.
    #[inline]
    pub fn run<R>(self, body: impl FnMut(&mut TxCtx<'a>) -> Result<R, TxError>) -> R {
        runner::run(self.th, self.lock, self.hints, body)
    }

    /// Run the section, fallibly: deadline expiry
    /// ([`TxHints::with_deadline`]) surfaces as
    /// [`TxError::DeadlineExceeded`] and an admission-controller shed as
    /// [`TxError::Overloaded`], instead of forcing the serial path. The
    /// body's own `Err` returns (other than [`TxError::Abort`] /
    /// [`TxError::Wait`], which drive retry) are not passed through — this
    /// is about *runner*-raised errors; on success the body's `Ok` value is
    /// returned unchanged.
    ///
    /// Failure is all-or-nothing: a deadline or shed rejection happens at a
    /// retry-ladder decision point, never mid-attempt, so no section
    /// effects have been published when `Err` comes back.
    #[inline]
    pub fn try_run<R>(
        self,
        body: impl FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
    ) -> Result<R, TxError> {
        runner::try_run(self.th, self.lock, self.hints, body)
    }

    /// Async twin of [`run`](TxRequest::run): resolves to the body's `Ok`
    /// value. The body stays synchronous (see the type-level docs); waiting
    /// — gate entry, condvar blocks, quiescence drains, backoff — suspends
    /// the task instead of parking the OS thread, so thousands of logical
    /// sessions can share a few executor workers.
    pub async fn run_async<R>(self, body: impl FnMut(&mut TxCtx<'a>) -> Result<R, TxError>) -> R {
        match crate::runner_async::run_async(self.th, self.lock, self.hints, body, false).await {
            Ok(r) => r,
            Err(e) => unreachable!("infallible run_async produced {e:?}"),
        }
    }

    /// Async twin of [`try_run`](TxRequest::try_run): deadline expiry and
    /// admission sheds surface as `Err`. [`deadline_us`] composes — the
    /// budget clamps async condvar waits and quiescence drains too.
    ///
    /// [`deadline_us`]: TxRequest::deadline_us
    pub async fn try_run_async<R>(
        self,
        body: impl FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
    ) -> Result<R, TxError> {
        crate::runner_async::run_async(self.th, self.lock, self.hints, body, true).await
    }
}

impl Drop for ThreadHandle {
    fn drop(&mut self) {
        self.sys.stm.slots.unregister_raw(self.stm_slot);
        self.sys.htm.slots.unregister_raw(self.htm_slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_match_paper() {
        assert_eq!(AlgoMode::Baseline.label(), "pthread");
        assert_eq!(AlgoMode::StmSpin.label(), "STM+Spin");
        assert_eq!(AlgoMode::StmCondvar.label(), "STM+CondVar");
        assert_eq!(
            AlgoMode::StmCondvarNoQuiesce.label(),
            "STM+CondVar+NoQuiesce"
        );
        assert_eq!(AlgoMode::HtmCondvar.label(), "HTM+CondVar");
        assert_eq!(AlgoMode::AdaptiveHtmLazy.label(), "AdaptiveHTM(lazy)");
        assert_eq!(
            AlgoMode::AdaptiveHtmLazyUnsafe.label(),
            "AdaptiveHTM(lazy-unsafe)"
        );
    }

    #[test]
    fn mode_u8_roundtrip() {
        for m in crate::ALL_MODES {
            assert_eq!(AlgoMode::try_from(m as u8), Ok(m));
        }
        assert_eq!(AlgoMode::try_from(5), Ok(AlgoMode::AdaptiveHtm));
        assert_eq!(AlgoMode::try_from(6), Ok(AlgoMode::AdaptiveHtmLazy));
        assert_eq!(AlgoMode::try_from(7), Ok(AlgoMode::AdaptiveHtmLazyUnsafe));
    }

    #[test]
    fn invalid_mode_bytes_are_rejected() {
        for v in [8u8, 100, u8::MAX] {
            assert_eq!(AlgoMode::try_from(v), Err(InvalidAlgoMode(v)));
        }
        let msg = InvalidAlgoMode(9).to_string();
        assert!(msg.contains('9'));
    }

    #[test]
    fn mode_family_helpers_are_consistent() {
        for v in 0..=7u8 {
            let m = AlgoMode::try_from(v).unwrap();
            if m.is_lazy() {
                assert!(m.is_glibc_family(), "{m:?}: lazy implies glibc-family");
            }
            if m.is_lazy_unsafe() {
                assert!(m.is_lazy(), "{m:?}: unsafe implies lazy");
            }
            if m.is_glibc_family() {
                assert!(m.is_transactional());
            }
        }
        assert!(!AlgoMode::AdaptiveHtm.is_lazy());
        assert!(AlgoMode::AdaptiveHtmLazy.is_lazy());
        assert!(!AlgoMode::AdaptiveHtmLazy.is_lazy_unsafe());
        assert!(AlgoMode::AdaptiveHtmLazyUnsafe.is_lazy_unsafe());
    }

    #[test]
    fn mode_from_str_accepts_cli_spellings() {
        for (s, m) in [
            ("baseline", AlgoMode::Baseline),
            ("pthread", AlgoMode::Baseline),
            ("stm-spin", AlgoMode::StmSpin),
            ("stm", AlgoMode::StmCondvar),
            ("stm-condvar", AlgoMode::StmCondvar),
            ("stm-noquiesce", AlgoMode::StmCondvarNoQuiesce),
            ("htm", AlgoMode::HtmCondvar),
            ("htm-condvar", AlgoMode::HtmCondvar),
            ("adaptive-htm", AlgoMode::AdaptiveHtm),
            ("adaptive", AlgoMode::AdaptiveHtm),
            ("adaptive-htm-lazy", AlgoMode::AdaptiveHtmLazy),
            ("lazy", AlgoMode::AdaptiveHtmLazy),
            ("adaptive-htm-lazy-unsafe", AlgoMode::AdaptiveHtmLazyUnsafe),
            ("lazy-unsafe", AlgoMode::AdaptiveHtmLazyUnsafe),
        ] {
            assert_eq!(s.parse::<AlgoMode>(), Ok(m), "{s}");
        }
        let err = "xtm".parse::<AlgoMode>().unwrap_err();
        assert_eq!(err, ParseAlgoModeError("xtm".into()));
        assert!(err.to_string().contains("xtm"));
    }

    #[test]
    fn noquiesce_mode_selects_selective_policy() {
        assert_eq!(
            AlgoMode::StmCondvarNoQuiesce.quiesce_policy(),
            QuiescePolicy::Selective
        );
        assert_eq!(AlgoMode::StmCondvar.quiesce_policy(), QuiescePolicy::Always);
    }

    #[test]
    fn register_claims_and_releases_slots() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        {
            let _a = sys.register();
            let _b = sys.register();
            assert_eq!(sys.stm.slots.claimed_count(), 2);
            assert_eq!(sys.htm.slots.claimed_count(), 2);
        }
        assert_eq!(sys.stm.slots.claimed_count(), 0);
        assert_eq!(sys.htm.slots.claimed_count(), 0);
    }

    #[test]
    fn set_mode_updates_quiesce_policy() {
        let sys = TmSystem::new(AlgoMode::StmCondvar);
        assert_eq!(sys.stm.policy(), QuiescePolicy::Always);
        sys.set_mode(AlgoMode::StmCondvarNoQuiesce);
        assert_eq!(sys.stm.policy(), QuiescePolicy::Selective);
        assert_eq!(sys.mode(), AlgoMode::StmCondvarNoQuiesce);
    }

    #[test]
    fn default_policy_matches_paper_configuration() {
        let p = TlePolicy::default();
        assert_eq!(p.htm_retries, 2, "paper: serialize after two HTM failures");
        assert!(
            p.escalation_bound > p.stm_retries,
            "the starvation ladder must be a backstop, not the primary fallback"
        );
    }

    #[test]
    fn builder_defaults_match_new() {
        let a = TmSystem::builder().build();
        assert_eq!(a.mode(), AlgoMode::HtmCondvar);
        assert!(!a.adaptive_enabled());
        let b = TmSystem::builder().mode(AlgoMode::StmCondvar).build();
        let c = TmSystem::new(AlgoMode::StmCondvar);
        assert_eq!(b.mode(), c.mode());
        assert_eq!(b.policy().htm_retries, c.policy().htm_retries);
        assert_eq!(b.stm.policy(), c.stm.policy());
    }

    #[test]
    fn builder_adaptive_toggle() {
        let sys = TmSystem::builder().adaptive(true).build();
        assert!(sys.adaptive_enabled());
        assert_eq!(sys.adaptive_config().unwrap().min_dwell_steps, 4);
        let off = TmSystem::builder().adaptive(true).adaptive(false).build();
        assert!(!off.adaptive_enabled());
    }

    #[test]
    fn tx_hints_fluent_and_tuple() {
        let h = TxHints::new().with_htm_retries(3).with_stm_retries(9);
        assert_eq!(h.htm_retries, Some(3));
        assert_eq!(h.stm_retries, Some(9));
        let t: TxHints = (4u32, 8u32).into();
        assert_eq!(t, TxHints::new().with_htm_retries(4).with_stm_retries(8));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_hint_constructors_delegate() {
        assert_eq!(TxHints::htm_retries(7), TxHints::new().with_htm_retries(7));
        assert_eq!(
            TxHints::stm_retries(11),
            TxHints::new().with_stm_retries(11)
        );
    }

    #[test]
    fn set_lock_mode_overrides_and_clears() {
        let sys = Arc::new(TmSystem::new(AlgoMode::HtmCondvar));
        let lock = ElidableMutex::new("pin");
        assert_eq!(lock.resolved_mode(sys.mode()), AlgoMode::HtmCondvar);
        sys.set_lock_mode(&lock, AlgoMode::Baseline);
        assert_eq!(lock.mode_override(), Some(AlgoMode::Baseline));
        assert_eq!(lock.switches(), 1);
        sys.clear_lock_mode(&lock);
        assert_eq!(lock.mode_override(), None);
        assert_eq!(lock.resolved_mode(sys.mode()), AlgoMode::HtmCondvar);
        let log = sys.mode_switches();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].to, AlgoMode::Baseline);
        assert_eq!(log[0].reason, SwitchReason::Manual);
    }

    #[test]
    fn no_quiesce_opt_in_upgrades_policy() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let lock = ElidableMutex::new("nq");
        assert_eq!(sys.stm.policy(), QuiescePolicy::Always);
        sys.set_lock_no_quiesce(&lock, true);
        assert!(lock.is_no_quiesce());
        assert_eq!(sys.stm.policy(), QuiescePolicy::Selective);
        sys.set_lock_no_quiesce(&lock, false);
        assert!(!lock.is_no_quiesce());
    }

    #[test]
    fn controller_step_without_adaptive_is_inert() {
        let sys = Arc::new(TmSystem::new(AlgoMode::HtmCondvar));
        let lock = ElidableMutex::new("inert");
        sys.adopt_lock(&lock); // no-op: adaptation off
        assert_eq!(sys.controller_step(), 0);
        assert!(!lock.domain().adopted());
    }

    #[test]
    fn adopt_is_idempotent_and_prunes_dead_locks() {
        let sys = Arc::new(TmSystem::builder().adaptive(true).build());
        let lock = ElidableMutex::new("adopt");
        sys.adopt_lock(&lock);
        sys.adopt_lock(&lock);
        assert_eq!(sys.locks.lock().len(), 1);
        drop(lock);
        sys.controller_step();
        assert!(sys.locks.lock().is_empty());
    }

    #[test]
    fn controller_demotes_capacity_dominated_htm_lock() {
        let cfg = AdaptiveConfig::default();
        let sys = Arc::new(TmSystem::builder().adaptive(true).build());
        let lock = ElidableMutex::new("cap");
        sys.adopt_lock(&lock);
        // Synthesize a capacity-heavy window, then step past the dwell
        // floor: the controller must demote to STM exactly once.
        for _ in 0..cfg.min_dwell_steps {
            lock.synthesize_window(60, 10, 30, 0);
            sys.controller_step();
        }
        assert_eq!(lock.mode_override(), Some(AlgoMode::StmCondvar));
        let log = sys.mode_switches();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].reason, SwitchReason::Capacity);
        assert_eq!(log[0].from, AlgoMode::HtmCondvar);
        // The flip reset the window: stale capacity evidence is gone.
        assert_eq!(lock.window_snapshot().attempts(), 0);
    }
}
