//! The top-level TLE system: algorithm mode, policy knobs, thread
//! registration.

use crate::elide::ElidableMutex;
use crate::runner;
use crate::{TxCtx, TxError};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use tle_base::stats::{fmt_ns, LatencyHistSnapshot, TxStats, TxStatsSnapshot};
use tle_base::{AbortCause, Gate};
use tle_htm::{HtmConfig, HtmGlobal};
use tle_stm::{QuiescePolicy, StmGlobal};

/// The five synchronization algorithms evaluated in the paper (§VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AlgoMode {
    /// The original pthread-style locking (no elision).
    Baseline = 0,
    /// STM elision; waiting degrades to polling in small transactions.
    StmSpin = 1,
    /// STM elision with transaction-friendly condition variables.
    StmCondvar = 2,
    /// `StmCondvar` plus selective quiescence disabling (`TM_NoQuiesce`).
    StmCondvarNoQuiesce = 3,
    /// Simulated-HTM elision with condition variables and serial fallback.
    HtmCondvar = 4,
    /// glibc-style adaptive lock elision (extension, not one of the
    /// paper's five): hardware transactions **subscribe to the lock word**
    /// and fall back to **the lock itself** (not global serialization);
    /// an adaptive skip counter disables elision on locks that keep
    /// aborting, exactly like glibc's `pthread_mutex_lock` elision.
    AdaptiveHtm = 5,
}

impl AlgoMode {
    /// Label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            AlgoMode::Baseline => "pthread",
            AlgoMode::StmSpin => "STM+Spin",
            AlgoMode::StmCondvar => "STM+CondVar",
            AlgoMode::StmCondvarNoQuiesce => "STM+CondVar+NoQuiesce",
            AlgoMode::HtmCondvar => "HTM+CondVar",
            AlgoMode::AdaptiveHtm => "AdaptiveHTM(glibc)",
        }
    }

    /// Decode from the atomic representation.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => AlgoMode::Baseline,
            1 => AlgoMode::StmSpin,
            2 => AlgoMode::StmCondvar,
            3 => AlgoMode::StmCondvarNoQuiesce,
            5 => AlgoMode::AdaptiveHtm,
            _ => AlgoMode::HtmCondvar,
        }
    }

    /// The quiescence policy this algorithm implies for its STM domain.
    pub fn quiesce_policy(self) -> QuiescePolicy {
        match self {
            AlgoMode::StmCondvarNoQuiesce => QuiescePolicy::Selective,
            _ => QuiescePolicy::Always,
        }
    }

    /// Whether this mode runs critical sections as transactions.
    pub fn is_transactional(self) -> bool {
        !matches!(self, AlgoMode::Baseline)
    }
}

/// Retry/fallback policy knobs.
#[derive(Debug, Clone)]
pub struct TlePolicy {
    /// Hardware attempts before serializing. The paper's configuration is
    /// **2** ("fall back to a serial mode after hardware transactions fail
    /// twice") and §VII-A calls tuning this knob out as future work — see
    /// the `ablate_htm_retry` bench.
    pub htm_retries: u32,
    /// Software attempts before serializing (GCC uses a similar abort-storm
    /// escape hatch).
    pub stm_retries: u32,
    /// Exponential-backoff ceiling (spins) between software retries.
    pub backoff_ceiling: u32,
    /// Starvation-escalation ladder: a thread whose *consecutive* aborts
    /// (accumulated across critical sections, reset by any concurrent
    /// commit) reach this bound is granted one serial-irrevocable slot —
    /// guaranteed progress for a thread the retry/fallback policy alone
    /// keeps starving. The default (2× `stm_retries`) only fires under
    /// persistent cross-section abort storms, so the paper-mode fallback
    /// behaviour is unchanged in ordinary runs.
    pub escalation_bound: u32,
}

impl Default for TlePolicy {
    fn default() -> Self {
        TlePolicy {
            htm_retries: 2,
            stm_retries: 64,
            backoff_ceiling: 1 << 12,
            escalation_bound: 128,
        }
    }
}

/// Per-critical-section overrides of the global [`TlePolicy`] — the
/// transaction-by-transaction retry tuning the paper's §VII-A asks for.
#[derive(Debug, Clone, Copy, Default)]
pub struct TxHints {
    /// Override the hardware-retry budget for this section.
    pub htm_retries: Option<u32>,
    /// Override the software-retry budget for this section.
    pub stm_retries: Option<u32>,
}

impl TxHints {
    /// Hint more (or fewer) hardware retries.
    pub fn htm_retries(n: u32) -> Self {
        TxHints {
            htm_retries: Some(n),
            ..TxHints::default()
        }
    }

    /// Hint more (or fewer) software retries.
    pub fn stm_retries(n: u32) -> Self {
        TxHints {
            stm_retries: Some(n),
            ..TxHints::default()
        }
    }
}

/// The assembled TLE runtime. One instance per process/benchmark-trial;
/// applications share it via `Arc`.
pub struct TmSystem {
    /// The software TM domain.
    pub stm: StmGlobal,
    /// The simulated hardware TM domain.
    pub htm: HtmGlobal,
    /// The serialization gate (irrevocability + fallback).
    pub gate: Gate,
    /// TLE-level statistics (serial fallbacks are counted here).
    pub stats: TxStats,
    mode: AtomicU8,
    policy: TlePolicy,
}

impl TmSystem {
    /// Build a system running algorithm `mode` with default policy.
    pub fn new(mode: AlgoMode) -> Self {
        Self::with_policy(mode, TlePolicy::default(), HtmConfig::default())
    }

    /// Build a system with explicit policy and HTM configuration.
    pub fn with_policy(mode: AlgoMode, policy: TlePolicy, htm_cfg: HtmConfig) -> Self {
        TmSystem {
            stm: StmGlobal::new(mode.quiesce_policy()),
            htm: HtmGlobal::new(htm_cfg),
            gate: Gate::new(),
            stats: TxStats::new(),
            mode: AtomicU8::new(mode as u8),
            policy,
        }
    }

    /// The active algorithm.
    #[inline]
    pub fn mode(&self) -> AlgoMode {
        AlgoMode::from_u8(self.mode.load(Ordering::Relaxed))
    }

    /// Switch algorithms. Only call between phases (no transactions in
    /// flight); benchmarks use this to sweep modes over one data set.
    pub fn set_mode(&self, mode: AlgoMode) {
        self.mode.store(mode as u8, Ordering::Relaxed);
        self.stm.set_policy(mode.quiesce_policy());
    }

    /// The retry/fallback policy.
    #[inline]
    pub fn policy(&self) -> &TlePolicy {
        &self.policy
    }

    /// Select the software-TM algorithm (`ml_wt`, the paper's; or NOrec,
    /// the privatization-safe-by-construction ablation). Takes effect for
    /// subsequently started transactions; switch only between phases.
    pub fn set_stm_algo(&self, algo: tle_stm::StmAlgo) {
        self.stm.set_algo(algo);
    }

    /// Register the calling thread, claiming STM and HTM slots. The handle
    /// is the capability through which critical sections run.
    pub fn register(self: &Arc<Self>) -> ThreadHandle {
        let stm_slot = self
            .stm
            .slots
            .register_raw()
            .expect("out of STM thread slots");
        let htm_slot = self
            .htm
            .slots
            .register_raw()
            .expect("out of HTM thread slots");
        ThreadHandle {
            sys: Arc::clone(self),
            stm_slot,
            htm_slot,
            in_critical: std::cell::Cell::new(false),
            consec_aborts: std::cell::Cell::new(0),
        }
    }

    /// Reset all statistics — and any recorded trace events — between
    /// benchmark trials.
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.stm.stats.reset();
        self.htm.stats.reset();
        tle_base::trace::clear();
    }

    /// Snapshot every domain's counters at once.
    pub fn domain_stats(&self) -> DomainStats {
        DomainStats {
            mode: self.mode(),
            tle: self.stats.snapshot(),
            stm: self.stm.stats.snapshot(),
            htm: self.htm.stats.tx.snapshot(),
        }
    }

    /// Render the Figure-4-style abort breakdown for the current counters.
    pub fn report(&self) -> String {
        self.domain_stats().report()
    }
}

/// A point-in-time view of every domain's statistics.
///
/// [`DomainStats::report`] renders the measured equivalent of the paper's
/// Figure 4: per-domain commit/abort totals and a per-cause abort breakdown,
/// plus quiescence-drain latency when the STM domain drained.
#[derive(Debug, Clone, Copy)]
pub struct DomainStats {
    /// Algorithm active when the snapshot was taken.
    pub mode: AlgoMode,
    /// TLE-runtime counters (serial commits and fallbacks).
    pub tle: TxStatsSnapshot,
    /// Software-TM domain counters.
    pub stm: TxStatsSnapshot,
    /// Simulated-hardware domain counters.
    pub htm: TxStatsSnapshot,
}

impl DomainStats {
    /// The STM drain-latency distribution (shortcut for plots/tests).
    pub fn quiesce_hist(&self) -> &LatencyHistSnapshot {
        &self.stm.quiesce_hist
    }

    /// Total aborts of `cause` across the STM and HTM domains.
    pub fn cause(&self, cause: AbortCause) -> u64 {
        self.stm.cause(cause) + self.htm.cause(cause)
    }

    /// Render a Figure-4-style table: per-domain totals, then one row per
    /// abort cause that actually occurred.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "abort breakdown [{}]", self.mode.label());
        let _ = writeln!(
            out,
            "  {:<18} {:>12} {:>12} {:>8}",
            "domain", "commits", "aborts", "abort%"
        );
        for (name, s) in [
            ("stm", &self.stm),
            ("htm", &self.htm),
            ("serial", &self.tle),
        ] {
            let _ = writeln!(
                out,
                "  {:<18} {:>12} {:>12} {:>7.2}%",
                name,
                s.commits,
                s.aborts,
                s.abort_rate() * 100.0
            );
        }
        let _ = writeln!(out, "  serial fallbacks: {}", self.tle.serial_fallbacks);
        let _ = writeln!(out, "  {:<18} {:>12} {:>12}", "cause", "stm", "htm");
        for c in AbortCause::ALL {
            let (s, h) = (self.stm.cause(c), self.htm.cause(c));
            if s == 0 && h == 0 {
                continue;
            }
            let _ = writeln!(out, "  {:<18} {:>12} {:>12}", c.label(), s, h);
        }
        if self.stm.quiesces > 0 {
            let _ = writeln!(
                out,
                "  quiesce drains: {} skipped: {} wait: {} ({})",
                self.stm.quiesces,
                self.stm.quiesce_skipped,
                fmt_ns(self.stm.quiesce_wait_ns),
                self.stm.quiesce_hist.summary()
            );
        }
        out
    }
}

/// A registered thread's capability to run elided critical sections.
pub struct ThreadHandle {
    pub(crate) sys: Arc<TmSystem>,
    pub(crate) stm_slot: usize,
    pub(crate) htm_slot: usize,
    /// Guards against nested critical sections (see
    /// [`ThreadHandle::critical`]).
    pub(crate) in_critical: std::cell::Cell<bool>,
    /// Consecutive concurrent-attempt aborts, across critical sections;
    /// input to the starvation-escalation ladder
    /// ([`TlePolicy::escalation_bound`]).
    pub(crate) consec_aborts: std::cell::Cell<u32>,
}

impl ThreadHandle {
    /// The system this handle belongs to.
    #[inline]
    pub fn system(&self) -> &Arc<TmSystem> {
        &self.sys
    }

    /// This thread's STM slot index (used as a statistics shard hint).
    #[inline]
    pub fn shard(&self) -> usize {
        self.stm_slot
    }

    /// Current consecutive-abort count (starvation-ladder diagnostics; see
    /// [`TlePolicy::escalation_bound`]).
    #[inline]
    pub fn consecutive_aborts(&self) -> u32 {
        self.consec_aborts.get()
    }

    /// Run `body` as the critical section guarded by `lock`.
    ///
    /// Under [`AlgoMode::Baseline`] this acquires the real mutex; under the
    /// TM modes it elides the lock and executes `body` transactionally,
    /// retrying on conflicts and falling back to global serialization per
    /// the [`TlePolicy`]. `body` may run many times and must be free of
    /// non-transactional side effects (use [`TxCtx::defer`] for I/O-style
    /// effects, or [`TxCtx::unsafe_op`] to force irrevocability).
    #[inline]
    pub fn critical<'a, R>(
        &'a self,
        lock: &'a ElidableMutex,
        body: impl FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
    ) -> R {
        runner::run(self, lock, TxHints::default(), body)
    }

    /// Like [`ThreadHandle::critical`], with per-section policy hints.
    ///
    /// This implements the tuning interface the paper calls for in §VII-A
    /// ("it would be beneficial for programmers to be able to suggest retry
    /// policies on a transaction-by-transaction basis: for queues that are
    /// expected to be un-contended, more retries before serialization might
    /// be appropriate") — a capability the C++ TMTS does not offer.
    #[inline]
    pub fn critical_hinted<'a, R>(
        &'a self,
        lock: &'a ElidableMutex,
        hints: TxHints,
        body: impl FnMut(&mut TxCtx<'a>) -> Result<R, TxError>,
    ) -> R {
        runner::run(self, lock, hints, body)
    }
}

impl Drop for ThreadHandle {
    fn drop(&mut self) {
        self.sys.stm.slots.unregister_raw(self.stm_slot);
        self.sys.htm.slots.unregister_raw(self.htm_slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_match_paper() {
        assert_eq!(AlgoMode::Baseline.label(), "pthread");
        assert_eq!(AlgoMode::StmSpin.label(), "STM+Spin");
        assert_eq!(AlgoMode::StmCondvar.label(), "STM+CondVar");
        assert_eq!(
            AlgoMode::StmCondvarNoQuiesce.label(),
            "STM+CondVar+NoQuiesce"
        );
        assert_eq!(AlgoMode::HtmCondvar.label(), "HTM+CondVar");
    }

    #[test]
    fn mode_u8_roundtrip() {
        for m in crate::ALL_MODES {
            assert_eq!(AlgoMode::from_u8(m as u8), m);
        }
    }

    #[test]
    fn noquiesce_mode_selects_selective_policy() {
        assert_eq!(
            AlgoMode::StmCondvarNoQuiesce.quiesce_policy(),
            QuiescePolicy::Selective
        );
        assert_eq!(AlgoMode::StmCondvar.quiesce_policy(), QuiescePolicy::Always);
    }

    #[test]
    fn register_claims_and_releases_slots() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        {
            let _a = sys.register();
            let _b = sys.register();
            assert_eq!(sys.stm.slots.claimed_count(), 2);
            assert_eq!(sys.htm.slots.claimed_count(), 2);
        }
        assert_eq!(sys.stm.slots.claimed_count(), 0);
        assert_eq!(sys.htm.slots.claimed_count(), 0);
    }

    #[test]
    fn set_mode_updates_quiesce_policy() {
        let sys = TmSystem::new(AlgoMode::StmCondvar);
        assert_eq!(sys.stm.policy(), QuiescePolicy::Always);
        sys.set_mode(AlgoMode::StmCondvarNoQuiesce);
        assert_eq!(sys.stm.policy(), QuiescePolicy::Selective);
        assert_eq!(sys.mode(), AlgoMode::StmCondvarNoQuiesce);
    }

    #[test]
    fn default_policy_matches_paper_configuration() {
        let p = TlePolicy::default();
        assert_eq!(p.htm_retries, 2, "paper: serialize after two HTM failures");
        assert!(
            p.escalation_bound > p.stm_retries,
            "the starvation ladder must be a backstop, not the primary fallback"
        );
    }
}
