//! Per-lock policy domains and the adaptive mode controller's decision
//! logic.
//!
//! The paper's central empirical finding (§VI) is that **no single
//! synchronization algorithm wins across workloads**: HTM wins short
//! critical sections, STM wins capacity-bound ones, and the plain lock wins
//! conflict storms. A [`LockDomain`] therefore attaches the full policy
//! state — mode override, retry budgets, quiescence opt-in, and a sliding
//! [`StatWindow`] of per-cause outcomes — to each
//! [`ElidableMutex`](crate::ElidableMutex) instead of pinning one global
//! [`AlgoMode`] for the whole process.
//!
//! The controller ([`TmSystem::controller_step`](crate::TmSystem::controller_step))
//! samples each adopted lock's window and calls [`decide`], a **pure
//! function** from `(mode, window, dwell, history)` to an optional
//! transition — pure so the hysteresis and determinism properties are unit
//! testable without threads. The decision table (also in DESIGN.md §12):
//!
//! | current mode | window evidence                              | transition  | reason          |
//! |--------------|----------------------------------------------|-------------|-----------------|
//! | HTM          | capacity share of aborts ≥ threshold         | → STM       | `Capacity`      |
//! | HTM / STM    | abort rate or serial-fallback rate ≥ storm   | → Baseline  | `ConflictStorm` |
//! | STM          | commit rate ≥ promote threshold (no capacity history) | → HTM | `Promotion`  |
//! | Baseline     | dwelled ≥ probe period (no window evidence possible under the real lock) | → HTM | `Probe` |
//!
//! Hysteresis comes from three mechanisms working together: a **minimum
//! dwell** after any switch, a **minimum sample count** before the window is
//! trusted, and a **window reset** at each switch so stale evidence from the
//! previous mode cannot immediately bounce the lock back. Capacity demotions
//! additionally latch ([`LockDomain`] remembers the last switch reason):
//! software transactions cannot observe capacity aborts, so promotion back
//! to HTM is suppressed rather than guessed.
//!
//! `*NoQuiesce` is **never** a controller target and never a source: skipping
//! the privatization drain is a correctness contract only the application can
//! assert (paper §IV-B), so it remains strictly per-lock opt-in via
//! [`TmSystem::set_lock_no_quiesce`](crate::TmSystem::set_lock_no_quiesce).

use crate::system::AlgoMode;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use tle_base::{StatWindow, WindowSnapshot};

/// Sentinel in the packed override byte: inherit the system's global mode.
const MODE_INHERIT: u8 = u8::MAX;
/// Sentinel in the packed retry-budget words: inherit [`TlePolicy`]'s value.
///
/// [`TlePolicy`]: crate::TlePolicy
const RETRIES_INHERIT: u32 = u32::MAX;

/// Why the controller (or a manual call) switched a lock's mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SwitchReason {
    /// Capacity aborts dominated an HTM lock's window; retrying in hardware
    /// cannot help, software transactions can (paper §VII-B).
    Capacity = 0,
    /// The abort or serial-fallback rate crossed the storm threshold; the
    /// plain lock serves contended sections with no wasted speculation.
    ConflictStorm = 1,
    /// A software-transactional lock committed nearly everything; hardware
    /// elision is cheaper for the same behaviour.
    Promotion = 2,
    /// A baselined lock dwelled long enough; probe elision again to notice
    /// when the storm has passed.
    Probe = 3,
    /// Explicit [`TmSystem::set_lock_mode`](crate::TmSystem::set_lock_mode)
    /// call, not a controller decision.
    Manual = 4,
}

impl SwitchReason {
    /// Short stable label for reports and repro keys.
    pub fn label(self) -> &'static str {
        match self {
            SwitchReason::Capacity => "capacity",
            SwitchReason::ConflictStorm => "storm",
            SwitchReason::Promotion => "promotion",
            SwitchReason::Probe => "probe",
            SwitchReason::Manual => "manual",
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        [
            SwitchReason::Capacity,
            SwitchReason::ConflictStorm,
            SwitchReason::Promotion,
            SwitchReason::Probe,
            SwitchReason::Manual,
        ]
        .get(v as usize)
        .copied()
    }
}

/// One recorded per-lock mode switch (see
/// [`TmSystem::mode_switches`](crate::TmSystem::mode_switches)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeSwitchEvent {
    /// Controller step counter at the time of the switch (0 for switches
    /// made before or outside controller stepping).
    pub step: u64,
    /// The lock's diagnostic name.
    pub lock: String,
    /// Mode the lock was leaving.
    pub from: AlgoMode,
    /// Mode the lock entered.
    pub to: AlgoMode,
    /// What triggered the switch.
    pub reason: SwitchReason,
}

impl std::fmt::Display for ModeSwitchEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {}: {} -> {} ({})",
            self.step,
            self.lock,
            self.from.label(),
            self.to.label(),
            self.reason.label()
        )
    }
}

/// Thresholds for the adaptive controller. All rates are fractions in
/// `[0, 1]`; all step counts are in units of
/// [`controller_step`](crate::TmSystem::controller_step) calls.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Steps a lock must dwell in a mode before any further switch
    /// (hysteresis floor).
    pub min_dwell_steps: u32,
    /// Attempts the window must contain before its rates are trusted;
    /// below this the controller keeps observing.
    pub min_window_samples: u64,
    /// Capacity share of aborts at which an HTM lock demotes to STM.
    pub capacity_demote_share: f64,
    /// Abort rate at which a transactional lock falls back to Baseline.
    pub storm_abort_rate: f64,
    /// Serial-fallback rate at which a transactional lock falls back to
    /// Baseline (fallbacks serialize globally, which is worse than the
    /// original per-lock mutex — paper §IV-A).
    pub storm_fallback_rate: f64,
    /// Commit rate at which an STM lock promotes to HTM.
    pub promote_commit_rate: f64,
    /// Steps a Baseline lock dwells before probing elision again.
    pub baseline_probe_steps: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_dwell_steps: 4,
            min_window_samples: 64,
            capacity_demote_share: 0.30,
            storm_abort_rate: 0.60,
            storm_fallback_rate: 0.25,
            promote_commit_rate: 0.98,
            baseline_probe_steps: 8,
        }
    }
}

/// The adaptive decision function — **pure**, so hysteresis is testable
/// against synthetic windows with no threads involved.
///
/// Inputs: the lock's currently resolved `mode`, the summed stat `window`,
/// the number of controller steps the lock has `dwelled` in this mode, and
/// the reason for the *last* switch (capacity demotions latch: STM cannot
/// observe capacity aborts, so promotion back to HTM is suppressed).
///
/// Returns `Some((target, reason))` when the lock should switch, `None` to
/// stay put. Never returns a `*NoQuiesce` target or any member of the
/// glibc-style elision family (`AdaptiveHtm` and the lazy-subscription
/// modes, which are opt-in only).
pub fn decide(
    mode: AlgoMode,
    window: &WindowSnapshot,
    dwelled: u32,
    last_reason: Option<SwitchReason>,
    cfg: &AdaptiveConfig,
) -> Option<(AlgoMode, SwitchReason)> {
    if dwelled < cfg.min_dwell_steps {
        return None;
    }
    match mode {
        // The real lock generates no abort evidence; probe on a timer.
        AlgoMode::Baseline => {
            if dwelled >= cfg.baseline_probe_steps {
                Some((AlgoMode::HtmCondvar, SwitchReason::Probe))
            } else {
                None
            }
        }
        AlgoMode::HtmCondvar => {
            if window.attempts() < cfg.min_window_samples {
                return None;
            }
            // Capacity first: a capacity-bound section also aborts a lot,
            // but STM — not the lock — is the informed response (§VII-B).
            if window.capacity_share() >= cfg.capacity_demote_share {
                return Some((AlgoMode::StmCondvar, SwitchReason::Capacity));
            }
            if window.abort_rate() >= cfg.storm_abort_rate
                || window.fallback_rate() >= cfg.storm_fallback_rate
            {
                return Some((AlgoMode::Baseline, SwitchReason::ConflictStorm));
            }
            None
        }
        AlgoMode::StmSpin | AlgoMode::StmCondvar => {
            if window.attempts() < cfg.min_window_samples {
                return None;
            }
            if window.abort_rate() >= cfg.storm_abort_rate
                || window.fallback_rate() >= cfg.storm_fallback_rate
            {
                return Some((AlgoMode::Baseline, SwitchReason::ConflictStorm));
            }
            if window.commit_rate() >= cfg.promote_commit_rate
                && last_reason != Some(SwitchReason::Capacity)
            {
                return Some((AlgoMode::HtmCondvar, SwitchReason::Promotion));
            }
            None
        }
        // NoQuiesce is an application correctness contract; the glibc-style
        // elision family (eager and lazy subscription alike) carries its
        // own adaptation, and the lazy modes are opt-in only — the
        // controller never enters or leaves any of them.
        AlgoMode::StmCondvarNoQuiesce | AlgoMode::AdaptiveHtm | AlgoMode::AdaptiveHtmLazy => None,
        #[cfg(any(test, debug_assertions, feature = "unsafe-modes"))]
        AlgoMode::AdaptiveHtmLazyUnsafe => None,
    }
}

/// One step of the admission controller's degradation ladder. Ordered:
/// overload walks the lock down one step at a time
/// (elide → serialize → shed) and recovery walks it back up the same way —
/// [`admission_decide`] never returns a two-step jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AdmissionStep {
    /// Normal operation: sections run under the lock's resolved mode.
    Elide = 0,
    /// Overload suspected: speculation is wasted work, so sections are
    /// routed straight to the serial path (no retry ladder to burn).
    Serialize = 1,
    /// Overload confirmed: fallible sections are refused at dispatch with
    /// [`TxError::Overloaded`](crate::TxError::Overloaded) so the hot lock
    /// fails fast instead of collapsing every caller. Infallible sections
    /// (plain [`critical`](crate::ThreadHandle::critical)) cannot observe
    /// errors and are serialized instead.
    Shed = 2,
}

impl AdmissionStep {
    /// Every step, in ladder order.
    pub const ALL: [AdmissionStep; 3] = [
        AdmissionStep::Elide,
        AdmissionStep::Serialize,
        AdmissionStep::Shed,
    ];

    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AdmissionStep::Elide => "elide",
            AdmissionStep::Serialize => "serialize",
            AdmissionStep::Shed => "shed",
        }
    }

    pub(crate) fn from_u8(v: u8) -> Option<Self> {
        Self::ALL.get(v as usize).copied()
    }
}

/// Thresholds for the admission controller ([`admission_decide`]). Rates
/// are fractions in `[0, 1]`; step counts are in controller-step units;
/// queue depths count sections concurrently dispatched on the lock.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Steps the ladder must dwell on a step before moving again
    /// (hysteresis floor, like [`AdaptiveConfig::min_dwell_steps`]).
    pub min_dwell_steps: u32,
    /// Attempts the window must contain before its rates are trusted for
    /// the elide → serialize decision.
    pub min_window_samples: u64,
    /// Abort rate at which an eliding lock degrades to Serialize.
    /// Deliberately above [`AdaptiveConfig::storm_abort_rate`]: the mode
    /// controller gets first shot at fixing a storm; admission is the
    /// last resort.
    pub serialize_abort_rate: f64,
    /// Serial-fallback rate at which an eliding lock degrades to Serialize.
    pub serialize_fallback_rate: f64,
    /// Queue depth at which a serialized lock degrades to Shed: even with
    /// speculation off, arrivals outpace the serial path.
    pub shed_queue_depth: u64,
    /// Queue depth at or below which a degraded lock recovers one step.
    /// The wide gap to [`shed_queue_depth`](Self::shed_queue_depth) is the
    /// no-flap hysteresis band.
    pub recover_queue_depth: u64,
    /// Steps a Serialize lock dwells (with a shallow queue) before probing
    /// elision again.
    pub recover_probe_steps: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            min_dwell_steps: 4,
            min_window_samples: 64,
            serialize_abort_rate: 0.75,
            serialize_fallback_rate: 0.50,
            shed_queue_depth: 16,
            recover_queue_depth: 2,
            recover_probe_steps: 8,
        }
    }
}

/// The admission decision function — **pure**, like [`decide`], so the
/// ladder's hysteresis is testable against synthetic windows.
///
/// Inputs: the lock's current ladder `step`, its summed stat `window`, the
/// instantaneous `queue_depth` (sections concurrently dispatched on the
/// lock), and the number of controller steps the ladder has `dwelled` on
/// this step.
///
/// Returns `Some(next)` to move exactly one ladder step, `None` to stay
/// put. Degradation is driven by outcome rates and queue depth
/// (elide → serialize) then queue depth alone (serialize → shed); recovery
/// is queue-depth- and timer-driven, one step at a time. The queue signal
/// matters at Elide because overload does not always abort: long
/// write-lock waits serialize a hot lock while every attempt still
/// commits, leaving the outcome rates clean.
pub fn admission_decide(
    step: AdmissionStep,
    window: &WindowSnapshot,
    queue_depth: u64,
    dwelled: u32,
    cfg: &AdmissionConfig,
) -> Option<AdmissionStep> {
    if dwelled < cfg.min_dwell_steps {
        return None;
    }
    match step {
        AdmissionStep::Elide => {
            // The queue signal needs no sample floor: the gauge counts
            // sections dispatched right now, not a windowed estimate.
            if queue_depth >= cfg.shed_queue_depth {
                return Some(AdmissionStep::Serialize);
            }
            if window.attempts() < cfg.min_window_samples {
                return None;
            }
            if window.abort_rate() >= cfg.serialize_abort_rate
                || window.fallback_rate() >= cfg.serialize_fallback_rate
            {
                return Some(AdmissionStep::Serialize);
            }
            None
        }
        AdmissionStep::Serialize => {
            if queue_depth >= cfg.shed_queue_depth {
                return Some(AdmissionStep::Shed);
            }
            if queue_depth <= cfg.recover_queue_depth && dwelled >= cfg.recover_probe_steps {
                return Some(AdmissionStep::Elide);
            }
            None
        }
        AdmissionStep::Shed => {
            if queue_depth <= cfg.recover_queue_depth {
                return Some(AdmissionStep::Serialize);
            }
            None
        }
    }
}

/// Per-lock policy state. One lives inside every
/// [`ElidableMutex`](crate::ElidableMutex); the runner consults it on every
/// dispatch, the controller mutates it under the mode-flip exclusion
/// protocol (see `TmSystem::flip_lock`).
pub(crate) struct LockDomain {
    /// Packed mode override ([`MODE_INHERIT`] = follow the system mode).
    mode_override: AtomicU8,
    /// Flip epoch: bumped inside total exclusion on every resolved-mode
    /// change. Runners capture it at dispatch and re-check after taking
    /// their exclusion foothold; a mismatch forces a re-dispatch.
    epoch: AtomicU64,
    /// Per-lock hardware retry budget ([`RETRIES_INHERIT`] = policy value).
    htm_retries: AtomicU32,
    /// Per-lock software retry budget ([`RETRIES_INHERIT`] = policy value).
    stm_retries: AtomicU32,
    /// Per-lock `TM_NoQuiesce` opt-in: when set, every software transaction
    /// under this lock asserts it does not privatize.
    no_quiesce: AtomicBool,
    /// Whether the lock was adopted into a system's adaptive controller.
    adopted: AtomicBool,
    /// Sliding window of recent section outcomes.
    pub(crate) window: StatWindow,
    /// Controller steps since the last switch.
    dwell: AtomicU32,
    /// Last switch reason + 1 (0 = never switched).
    last_reason: AtomicU8,
    /// Lifetime switch count (diagnostics).
    switches: AtomicU64,
    /// Current admission-ladder step ([`AdmissionStep`] discriminant).
    admission: AtomicU8,
    /// Controller steps since the ladder last moved.
    adm_dwell: AtomicU32,
    /// Sections currently dispatched on this lock (inc at dispatch, dec at
    /// completion) — the admission controller's queue-depth signal.
    queue: AtomicU64,
    /// Deepest `queue` seen since the controller last looked. A controller
    /// tick sampling the instantaneous gauge would miss overload whose
    /// sections drain between ticks; the peak cannot be gamed by timing.
    queue_peak: AtomicU64,
    /// Highest admission step the ladder ever reached (diagnostics; the
    /// ladder may have recovered long before anyone asks).
    adm_high: AtomicU8,
}

impl LockDomain {
    pub(crate) fn new() -> Self {
        LockDomain {
            mode_override: AtomicU8::new(MODE_INHERIT),
            epoch: AtomicU64::new(0),
            htm_retries: AtomicU32::new(RETRIES_INHERIT),
            stm_retries: AtomicU32::new(RETRIES_INHERIT),
            no_quiesce: AtomicBool::new(false),
            adopted: AtomicBool::new(false),
            window: StatWindow::new(),
            dwell: AtomicU32::new(0),
            last_reason: AtomicU8::new(0),
            switches: AtomicU64::new(0),
            admission: AtomicU8::new(AdmissionStep::Elide as u8),
            adm_dwell: AtomicU32::new(0),
            queue: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            adm_high: AtomicU8::new(AdmissionStep::Elide as u8),
        }
    }

    /// The per-lock override, if any.
    pub(crate) fn override_mode(&self) -> Option<AlgoMode> {
        let v = self.mode_override.load(Ordering::SeqCst);
        if v == MODE_INHERIT {
            None
        } else {
            Some(AlgoMode::try_from(v).expect("corrupt mode override byte"))
        }
    }

    /// The mode this lock actually runs under, given the system mode.
    pub(crate) fn resolved(&self, global: AlgoMode) -> AlgoMode {
        self.override_mode().unwrap_or(global)
    }

    /// Install an override (`None` = back to inherit). Only call under the
    /// flip exclusion protocol.
    pub(crate) fn set_override(&self, mode: Option<AlgoMode>) {
        let v = mode.map(|m| m as u8).unwrap_or(MODE_INHERIT);
        self.mode_override.store(v, Ordering::SeqCst);
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    pub(crate) fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn htm_retries(&self, inherit: u32) -> u32 {
        match self.htm_retries.load(Ordering::Relaxed) {
            RETRIES_INHERIT => inherit,
            n => n,
        }
    }

    pub(crate) fn stm_retries(&self, inherit: u32) -> u32 {
        match self.stm_retries.load(Ordering::Relaxed) {
            RETRIES_INHERIT => inherit,
            n => n,
        }
    }

    pub(crate) fn set_retry_budgets(&self, htm: Option<u32>, stm: Option<u32>) {
        self.htm_retries.store(
            htm.map(|n| n.min(RETRIES_INHERIT - 1))
                .unwrap_or(RETRIES_INHERIT),
            Ordering::Relaxed,
        );
        self.stm_retries.store(
            stm.map(|n| n.min(RETRIES_INHERIT - 1))
                .unwrap_or(RETRIES_INHERIT),
            Ordering::Relaxed,
        );
    }

    pub(crate) fn no_quiesce(&self) -> bool {
        self.no_quiesce.load(Ordering::Relaxed)
    }

    pub(crate) fn set_no_quiesce(&self, on: bool) {
        self.no_quiesce.store(on, Ordering::Relaxed);
    }

    pub(crate) fn adopted(&self) -> bool {
        self.adopted.load(Ordering::Relaxed)
    }

    pub(crate) fn set_adopted(&self) {
        self.adopted.store(true, Ordering::Relaxed);
    }

    /// One controller step elapsed; returns the new dwell count.
    pub(crate) fn bump_dwell(&self) -> u32 {
        self.dwell.fetch_add(1, Ordering::Relaxed).saturating_add(1)
    }

    pub(crate) fn reset_dwell(&self) {
        self.dwell.store(0, Ordering::Relaxed);
    }

    pub(crate) fn last_reason(&self) -> Option<SwitchReason> {
        match self.last_reason.load(Ordering::Relaxed) {
            0 => None,
            v => SwitchReason::from_u8(v - 1),
        }
    }

    pub(crate) fn set_last_reason(&self, reason: SwitchReason) {
        self.last_reason.store(reason as u8 + 1, Ordering::Relaxed);
    }

    pub(crate) fn note_switch(&self) {
        self.switches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn switch_count(&self) -> u64 {
        self.switches.load(Ordering::Relaxed)
    }

    /// The lock's current admission-ladder step.
    pub(crate) fn admission_step(&self) -> AdmissionStep {
        AdmissionStep::from_u8(self.admission.load(Ordering::Relaxed))
            .expect("corrupt admission byte")
    }

    /// Move the ladder (controller only); resets the ladder dwell.
    pub(crate) fn set_admission_step(&self, step: AdmissionStep) {
        self.admission.store(step as u8, Ordering::Relaxed);
        self.adm_high.fetch_max(step as u8, Ordering::Relaxed);
        self.adm_dwell.store(0, Ordering::Relaxed);
    }

    /// Highest step the ladder ever reached on this lock.
    pub(crate) fn admission_high_water(&self) -> AdmissionStep {
        AdmissionStep::from_u8(self.adm_high.load(Ordering::Relaxed))
            .expect("corrupt admission high-water byte")
    }

    /// One controller step elapsed on the ladder; returns the new dwell.
    pub(crate) fn bump_adm_dwell(&self) -> u32 {
        self.adm_dwell
            .fetch_add(1, Ordering::Relaxed)
            .saturating_add(1)
    }

    /// A section was dispatched on this lock; returns the new depth.
    #[inline]
    pub(crate) fn enter_queue(&self) -> u64 {
        let depth = self.queue.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
        depth
    }

    /// A dispatched section completed (committed, shed, or expired).
    #[inline]
    pub(crate) fn exit_queue(&self) {
        self.queue.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sections currently dispatched on this lock.
    pub(crate) fn queue_depth(&self) -> u64 {
        self.queue.load(Ordering::Relaxed)
    }

    /// Deepest queue since the previous call (controller only): the peak
    /// drains into the current depth so each tick sees a fresh window.
    pub(crate) fn take_queue_peak(&self) -> u64 {
        let now = self.queue.load(Ordering::Relaxed);
        self.queue_peak.swap(now, Ordering::Relaxed).max(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdaptiveConfig {
        AdaptiveConfig::default()
    }

    fn snap(commits: u64, conflict: u64, capacity: u64, serial: u64) -> WindowSnapshot {
        WindowSnapshot {
            commits,
            conflict_aborts: conflict,
            capacity_aborts: capacity,
            other_aborts: 0,
            serial,
            quiesce_ns: 0,
        }
    }

    #[test]
    fn capacity_dominated_htm_demotes_to_stm() {
        let w = snap(60, 10, 30, 0);
        assert_eq!(
            decide(AlgoMode::HtmCondvar, &w, 10, None, &cfg()),
            Some((AlgoMode::StmCondvar, SwitchReason::Capacity))
        );
    }

    #[test]
    fn conflict_storm_falls_back_to_baseline() {
        // 70% aborts, all conflicts: both HTM and STM give the lock back.
        let w = snap(30, 70, 0, 0);
        for mode in [
            AlgoMode::HtmCondvar,
            AlgoMode::StmCondvar,
            AlgoMode::StmSpin,
        ] {
            assert_eq!(
                decide(mode, &w, 10, None, &cfg()),
                Some((AlgoMode::Baseline, SwitchReason::ConflictStorm)),
                "under {mode:?}"
            );
        }
    }

    #[test]
    fn serial_fallback_rate_alone_triggers_storm() {
        // Low abort *rate* but a third of completions went through the
        // global serial gate — worse than the original per-lock mutex.
        let w = snap(70, 5, 0, 30);
        assert_eq!(
            decide(AlgoMode::StmCondvar, &w, 10, None, &cfg()),
            Some((AlgoMode::Baseline, SwitchReason::ConflictStorm))
        );
    }

    #[test]
    fn read_mostly_stm_promotes_to_htm() {
        let w = snap(99, 1, 0, 0);
        assert_eq!(
            decide(AlgoMode::StmCondvar, &w, 10, None, &cfg()),
            Some((AlgoMode::HtmCondvar, SwitchReason::Promotion))
        );
    }

    #[test]
    fn capacity_history_latches_out_promotion() {
        // After a capacity demotion STM commits beautifully — but the
        // capacity problem is invisible from STM, so no bounce back.
        let w = snap(100, 0, 0, 0);
        assert_eq!(
            decide(
                AlgoMode::StmCondvar,
                &w,
                100,
                Some(SwitchReason::Capacity),
                &cfg()
            ),
            None
        );
    }

    #[test]
    fn dwell_floor_blocks_every_transition() {
        let storm = snap(0, 100, 0, 0);
        let c = cfg();
        assert_eq!(
            decide(
                AlgoMode::HtmCondvar,
                &storm,
                c.min_dwell_steps - 1,
                None,
                &c
            ),
            None,
            "hysteresis: must dwell before switching again"
        );
    }

    #[test]
    fn thin_window_is_not_trusted() {
        let c = cfg();
        // Storm-shaped but fewer samples than min_window_samples.
        let w = snap(3, 20, 0, 0);
        assert!(w.attempts() < c.min_window_samples);
        assert_eq!(decide(AlgoMode::HtmCondvar, &w, 10, None, &c), None);
    }

    #[test]
    fn baseline_probes_after_dwelling() {
        let w = snap(0, 0, 0, 500);
        let c = cfg();
        assert_eq!(
            decide(AlgoMode::Baseline, &w, c.baseline_probe_steps - 1, None, &c),
            None
        );
        assert_eq!(
            decide(AlgoMode::Baseline, &w, c.baseline_probe_steps, None, &c),
            Some((AlgoMode::HtmCondvar, SwitchReason::Probe))
        );
    }

    #[test]
    fn noquiesce_and_adaptive_htm_are_hands_off() {
        let storm = snap(0, 1000, 0, 0);
        assert_eq!(
            decide(AlgoMode::StmCondvarNoQuiesce, &storm, 100, None, &cfg()),
            None,
            "NoQuiesce is an app contract, the controller must not leave it"
        );
        assert_eq!(
            decide(AlgoMode::AdaptiveHtm, &storm, 100, None, &cfg()),
            None,
            "glibc-style elision carries its own adaptation"
        );
        assert_eq!(
            decide(AlgoMode::AdaptiveHtmLazy, &storm, 100, None, &cfg()),
            None,
            "lazy subscription is opt-in only; the controller must not leave it"
        );
        assert_eq!(
            decide(AlgoMode::AdaptiveHtmLazyUnsafe, &storm, 100, None, &cfg()),
            None,
            "the unsafe strawman is opt-in only; the controller must not leave it"
        );
    }

    #[test]
    fn controller_never_targets_noquiesce_or_adaptive() {
        // Sweep a grid of synthetic windows; whatever the evidence, the
        // target set is {Baseline, StmCondvar, HtmCondvar}.
        let c = cfg();
        for commits in [0u64, 50, 100, 1000] {
            for conflict in [0u64, 50, 1000] {
                for capacity in [0u64, 50, 1000] {
                    for serial in [0u64, 50, 1000] {
                        let w = snap(commits, conflict, capacity, serial);
                        for mode in [
                            AlgoMode::Baseline,
                            AlgoMode::StmSpin,
                            AlgoMode::StmCondvar,
                            AlgoMode::HtmCondvar,
                            AlgoMode::AdaptiveHtm,
                            AlgoMode::AdaptiveHtmLazy,
                            AlgoMode::AdaptiveHtmLazyUnsafe,
                        ] {
                            if let Some((to, _)) = decide(mode, &w, 100, None, &c) {
                                assert!(
                                    matches!(
                                        to,
                                        AlgoMode::Baseline
                                            | AlgoMode::StmCondvar
                                            | AlgoMode::HtmCondvar
                                    ),
                                    "illegal target {to:?} from {mode:?}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn oscillating_window_does_not_flap() {
        // Simulate the controller loop against a window that alternates
        // between capacity-heavy and clean every step. The dwell floor,
        // window reset at switch (modelled by restarting dwell), and the
        // capacity latch must keep the lock from ping-ponging.
        let c = cfg();
        let mut mode = AlgoMode::HtmCondvar;
        let mut dwell = 0u32;
        let mut last = None;
        let mut switches = 0u32;
        for step in 0..1000u32 {
            dwell += 1;
            let w = if step % 2 == 0 {
                snap(60, 10, 30, 0) // capacity-heavy
            } else {
                snap(100, 0, 0, 0) // spotless
            };
            if let Some((to, reason)) = decide(mode, &w, dwell, last, &c) {
                mode = to;
                last = Some(reason);
                dwell = 0;
                switches += 1;
            }
        }
        // Exactly one switch: HTM -> STM on the first trusted capacity
        // window; the capacity latch then pins promotion off forever.
        assert_eq!(switches, 1, "controller flapped");
        assert_eq!(mode, AlgoMode::StmCondvar);
    }

    #[test]
    fn domain_defaults_inherit_everything() {
        let d = LockDomain::new();
        assert_eq!(d.override_mode(), None);
        assert_eq!(d.resolved(AlgoMode::StmSpin), AlgoMode::StmSpin);
        assert_eq!(d.htm_retries(2), 2);
        assert_eq!(d.stm_retries(64), 64);
        assert!(!d.no_quiesce());
        assert!(!d.adopted());
        assert_eq!(d.epoch(), 0);
        assert_eq!(d.switch_count(), 0);
    }

    #[test]
    fn domain_override_and_budget_roundtrip() {
        let d = LockDomain::new();
        d.set_override(Some(AlgoMode::Baseline));
        assert_eq!(d.resolved(AlgoMode::HtmCondvar), AlgoMode::Baseline);
        d.set_override(None);
        assert_eq!(d.resolved(AlgoMode::HtmCondvar), AlgoMode::HtmCondvar);
        d.set_retry_budgets(Some(7), Some(9));
        assert_eq!(d.htm_retries(2), 7);
        assert_eq!(d.stm_retries(64), 9);
        d.set_retry_budgets(None, None);
        assert_eq!(d.htm_retries(2), 2);
        assert_eq!(d.stm_retries(64), 64);
    }
}
