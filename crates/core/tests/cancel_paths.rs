//! Cancel-path tests for timed condvar waits (paper §VI-d).
//!
//! A timed wait that expires must *cancel* its ring entry in a follow-up
//! transaction (`cancel_wait`), and a wait registration whose transaction
//! fails to commit must reclaim the queue-owned `Arc` reference
//! (`reclaim_enqueue_ref`) — both paths hold a raw pointer produced by
//! `Arc::into_raw`, so a bug here is a leak or a double-free rather than a
//! wrong answer. These tests drive each path under both TM flavours
//! (`StmCondvar` exercises the STM removal transaction, `HtmCondvar` the
//! hardware one) and then prove the condvar is still *usable*: a stale or
//! double-claimed ring entry would swallow the subsequent wakeup.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tle_base::TCell;
use tle_core::{AlgoMode, ElidableMutex, TmSystem, TxCondvar};
use tle_htm::HtmConfig;

/// A signal round-trip: one thread waits (untimed) for a flag, the other
/// sets it and signals. Proves the ring still delivers wakeups — run after
/// every cancellation scenario to show cancelled entries left no residue
/// that absorbs signals.
fn assert_signal_round_trip(sys: &Arc<TmSystem>, lock: &Arc<ElidableMutex>, cv: &Arc<TxCondvar>) {
    let flag = Arc::new(TCell::new(false));
    let waiter = {
        let (sys, lock, cv, flag) = (
            Arc::clone(sys),
            Arc::clone(lock),
            Arc::clone(cv),
            Arc::clone(&flag),
        );
        std::thread::spawn(move || {
            let th = sys.register();
            th.tx(&lock).run(|ctx| {
                if ctx.read(&*flag)? {
                    Ok(())
                } else {
                    ctx.wait(&cv, None).map(|_| ())
                }
            });
        })
    };
    // Give the waiter a moment to park, then signal inside a transaction.
    std::thread::sleep(Duration::from_millis(20));
    let th = sys.register();
    th.tx(lock).run(|ctx| {
        ctx.write(&*flag, true)?;
        ctx.signal(cv)?;
        Ok(())
    });
    waiter
        .join()
        .expect("round-trip waiter wedged: signal lost");
}

/// Timed wait with nobody signalling: the timeout fires, `cancel_wait`
/// removes the ring entry, and the closure re-runs. Exercised under both TM
/// flavours so both the STM and the HTM removal transactions run.
fn timed_wait_expiry(mode: AlgoMode) {
    let sys = Arc::new(TmSystem::new(mode));
    let lock = Arc::new(ElidableMutex::new("expiry"));
    let cv = Arc::new(TxCondvar::new());
    let never = Arc::new(TCell::new(false));

    let th = sys.register();
    let mut wakes = 0u32;
    let t0 = Instant::now();
    th.tx(&lock).run(|ctx| {
        if !ctx.read(&*never)? {
            wakes += 1;
            if wakes > 2 {
                // Two expirations observed; stop polling.
                return Ok(());
            }
            return ctx.wait(&cv, Some(Duration::from_millis(10))).map(|_| ());
        }
        Ok(())
    });
    assert!(
        t0.elapsed() >= Duration::from_millis(15),
        "{mode:?}: returned before both timeouts could expire"
    );
    assert!(wakes > 2, "{mode:?}: closure not re-run after timeout");
    // Each expiry cancelled its own entry; the ring must still work.
    assert_signal_round_trip(&sys, &lock, &cv);
}

#[test]
fn timed_wait_expires_and_cancels_under_stm() {
    timed_wait_expiry(AlgoMode::StmCondvar);
}

#[test]
fn timed_wait_expires_and_cancels_under_htm() {
    timed_wait_expiry(AlgoMode::HtmCondvar);
}

/// A signaller firing right as timeouts expire: `cancel_wait`'s remove races
/// the signaller's dequeue for the same entry. Exactly one side may claim it
/// (and with it the queue's `Arc` reference) — a double claim double-frees,
/// a missed claim leaks or deadlocks a later waiter. The waiters use short
/// timeouts so every iteration re-runs the race.
fn signal_races_timeout(mode: AlgoMode) {
    const WAITERS: usize = 3;
    let sys = Arc::new(TmSystem::new(mode));
    let lock = Arc::new(ElidableMutex::new("race"));
    let cv = Arc::new(TxCondvar::new());
    let flag = Arc::new(TCell::new(false));
    let stop = Arc::new(AtomicBool::new(false));

    let waiters: Vec<_> = (0..WAITERS)
        .map(|i| {
            let (sys, lock, cv, flag) = (
                Arc::clone(&sys),
                Arc::clone(&lock),
                Arc::clone(&cv),
                Arc::clone(&flag),
            );
            std::thread::spawn(move || {
                let th = sys.register();
                // Staggered timeouts line up differently with the signal
                // cadence on each iteration, widening race coverage.
                let timeout = Duration::from_micros(500 + 300 * i as u64);
                th.tx(&lock).run(|ctx| {
                    if ctx.read(&*flag)? {
                        Ok(())
                    } else {
                        ctx.wait(&cv, Some(timeout)).map(|_| ())
                    }
                });
            })
        })
        .collect();

    let signaller = {
        let (sys, lock, cv, stop) = (
            Arc::clone(&sys),
            Arc::clone(&lock),
            Arc::clone(&cv),
            Arc::clone(&stop),
        );
        std::thread::spawn(move || {
            let th = sys.register();
            while !stop.load(Ordering::Acquire) {
                th.tx(&lock).run(|ctx| ctx.signal(&cv));
                std::thread::sleep(Duration::from_micros(400));
            }
        })
    };

    // Let signals and timeouts collide for a while, then release everyone.
    std::thread::sleep(Duration::from_millis(100));
    let th = sys.register();
    th.tx(&lock).run(|ctx| {
        ctx.write(&*flag, true)?;
        ctx.broadcast(&cv)?;
        Ok(())
    });
    for w in waiters {
        w.join()
            .expect("waiter lost both the signal and the timeout");
    }
    stop.store(true, Ordering::Release);
    signaller.join().unwrap();

    // Cancelled residue compacts on the next enqueue; a full round-trip
    // proves neither side of the race left a claimed-but-live entry behind.
    assert_signal_round_trip(&sys, &lock, &cv);
}

#[test]
fn signal_races_timeout_under_stm() {
    signal_races_timeout(AlgoMode::StmCondvar);
}

#[test]
fn signal_races_timeout_under_htm() {
    signal_races_timeout(AlgoMode::HtmCondvar);
}

/// Force wait-registration transactions to fail so `reclaim_enqueue_ref`
/// (runner) and the enqueue-failure reclaim (ctx) run: an aggressive
/// simulated event-abort rate kills registrations mid-enqueue, and ring
/// head/tail contention between concurrent waiters dooms others between
/// enqueue and commit. Every failure must drop exactly the one reference
/// the rolled-back ring write would have owned.
#[test]
fn failed_wait_registration_reclaims_queue_reference() {
    let cfg = HtmConfig {
        // ~5% per access: with ~8 transactional accesses per registration,
        // most waits lose at least one attempt to an event abort.
        event_prob: 0.05,
        seed: 0xDECAF,
        ..HtmConfig::default()
    };
    let sys = Arc::new(
        TmSystem::builder()
            .mode(AlgoMode::HtmCondvar)
            .htm_config(cfg)
            .build(),
    );
    let lock = Arc::new(ElidableMutex::new("reclaim"));
    let cv = Arc::new(TxCondvar::new());
    let flag = Arc::new(TCell::new(0u64));
    const THREADS: usize = 4;
    const ROUNDS: u64 = 50;

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let (sys, lock, cv, flag) = (
                Arc::clone(&sys),
                Arc::clone(&lock),
                Arc::clone(&cv),
                Arc::clone(&flag),
            );
            std::thread::spawn(move || {
                let th = sys.register();
                for round in 1..=ROUNDS {
                    // Timed wait: almost always expires (nobody signals on
                    // this phase), so the registration commits — or fails
                    // and is retried, reclaiming the queue reference each
                    // time — and then cancels.
                    let mut polls = 0u32;
                    th.tx(&lock).run(|ctx| {
                        polls += 1;
                        if polls > 1 {
                            return Ok(());
                        }
                        ctx.wait(&cv, Some(Duration::from_micros(200))).map(|_| ())
                    });
                    // Interleave signals so dequeues contend with enqueues.
                    th.tx(&lock).run(|ctx| {
                        let v = ctx.read(&*flag)?;
                        ctx.write(&*flag, v + 1)?;
                        ctx.signal(&cv)?;
                        Ok(())
                    });
                    let _ = round;
                }
            })
        })
        .collect();
    for h in handles {
        h.join()
            .expect("thread died reclaiming a failed registration");
    }

    // The flag increments are plain transactional updates; losing one would
    // mean an abort path corrupted state on its way out.
    assert_eq!(flag.load_direct(), THREADS as u64 * ROUNDS);

    // The event-abort rate guarantees the failure paths actually ran.
    let stats = sys.domain_stats();
    assert!(
        stats.htm.aborts > 0,
        "event_prob=0.05 produced no aborts: reclaim paths never exercised"
    );

    assert_signal_round_trip(&sys, &lock, &cv);
}
