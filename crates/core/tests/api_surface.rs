//! API-surface and equivalence tests for the rebuilt construction API:
//! the `TmSystem` builder must exactly reproduce the legacy constructors,
//! the deprecated shims must delegate, and the fallible conversions must
//! reject what the old `from_u8` silently clamped.

use std::sync::Arc;
use tle_core::{AlgoMode, ElidableMutex, InvalidAlgoMode, TlePolicy, TmSystem, TxHints, ALL_MODES};
use tle_htm::HtmConfig;

/// `TmSystem::new(mode)` and the bare builder agree on every observable
/// configuration default.
#[test]
fn builder_defaults_reproduce_new() {
    for mode in ALL_MODES {
        let legacy = TmSystem::new(mode);
        let built = TmSystem::builder().mode(mode).build();
        assert_eq!(legacy.mode(), built.mode());
        assert_eq!(legacy.policy(), built.policy());
        assert!(!legacy.adaptive_enabled());
        assert!(!built.adaptive_enabled());
        assert!(built.adaptive_config().is_none());
    }
    // The builder's default mode is HtmCondvar, like the README quickstart.
    assert_eq!(TmSystem::builder().build().mode(), AlgoMode::HtmCondvar);
}

/// The deprecated positional constructor and the builder produce the same
/// system for the same inputs.
#[test]
fn with_policy_shim_delegates_to_builder() {
    let policy = TlePolicy {
        htm_retries: 7,
        stm_retries: 11,
        ..TlePolicy::default()
    };
    let htm_cfg = HtmConfig {
        write_cap_lines: 32,
        ..HtmConfig::default()
    };
    #[allow(deprecated)]
    let legacy = TmSystem::with_policy(AlgoMode::HtmCondvar, policy.clone(), htm_cfg.clone());
    let built = TmSystem::builder()
        .mode(AlgoMode::HtmCondvar)
        .policy(policy)
        .htm_config(htm_cfg)
        .build();
    assert_eq!(legacy.mode(), built.mode());
    assert_eq!(legacy.policy(), built.policy());
    assert_eq!(legacy.policy().htm_retries, 7);
    assert_eq!(built.policy().stm_retries, 11);
}

/// Both systems behave identically on a real critical section.
#[test]
fn legacy_and_builder_systems_run_identically() {
    let run = |sys: Arc<TmSystem>| {
        let th = sys.register();
        let lock = ElidableMutex::new("equiv");
        let cell = tle_base::TCell::new(0u64);
        for _ in 0..100 {
            th.tx(&lock).run(|ctx| {
                let v = ctx.read(&cell)?;
                ctx.write(&cell, v + 1)?;
                Ok(())
            });
        }
        cell.load_direct()
    };
    assert_eq!(run(Arc::new(TmSystem::new(AlgoMode::StmCondvar))), 100);
    assert_eq!(
        run(Arc::new(
            TmSystem::builder().mode(AlgoMode::StmCondvar).build()
        )),
        100
    );
}

/// `critical_hinted` (deprecated) delegates to `critical_with`.
#[test]
fn critical_hinted_shim_delegates() {
    let sys = Arc::new(TmSystem::new(AlgoMode::HtmCondvar));
    let th = sys.register();
    let lock = ElidableMutex::new("hinted");
    let cell = tle_base::TCell::new(5u64);
    #[allow(deprecated)]
    let a = th.critical_hinted(&lock, TxHints::new().with_htm_retries(4), |ctx| {
        ctx.read(&cell)
    });
    let b = th
        .tx(&lock)
        .hints(TxHints::new().with_htm_retries(4))
        .run(|ctx| ctx.read(&cell));
    assert_eq!(a, b);
    assert_eq!(a, 5);
}

/// The fluent hint type can set both budgets at once; the tuple shorthand
/// converts; the deprecated one-shot constructors still produce the same
/// values they used to.
#[test]
fn tx_hints_fluent_and_conversions() {
    let both = TxHints::new().with_htm_retries(3).with_stm_retries(9);
    assert_eq!(both.htm_retries, Some(3));
    assert_eq!(both.stm_retries, Some(9));

    let from_tuple: TxHints = (3u32, 9u32).into();
    assert_eq!(from_tuple, both);

    assert_eq!(TxHints::new(), TxHints::default());
    assert_eq!(TxHints::default().htm_retries, None);

    #[allow(deprecated)]
    {
        assert_eq!(TxHints::htm_retries(3), TxHints::new().with_htm_retries(3));
        assert_eq!(TxHints::stm_retries(9), TxHints::new().with_stm_retries(9));
    }

    // `critical_with` accepts anything Into<TxHints>.
    let sys = Arc::new(TmSystem::new(AlgoMode::HtmCondvar));
    let th = sys.register();
    let lock = ElidableMutex::new("into-hints");
    let got = th.tx(&lock).hints((2u32, 2u32)).run(|_ctx| Ok(42u64));
    assert_eq!(got, 42);
}

/// Every deprecated `critical*` entry point delegates to the `tx()`
/// request builder and returns identical results.
#[test]
fn deprecated_critical_family_matches_builder() {
    let sys = Arc::new(TmSystem::new(AlgoMode::HtmCondvar));
    let th = sys.register();
    let lock = ElidableMutex::new("shims");
    let cell = tle_base::TCell::new(10u64);

    #[allow(deprecated)]
    let a = th.critical(&lock, |ctx| ctx.read(&cell));
    let b = th.tx(&lock).run(|ctx| ctx.read(&cell));
    assert_eq!((a, b), (10, 10));

    #[allow(deprecated)]
    let a = th.critical_with(&lock, (4u32, 4u32), |ctx| ctx.update(&cell, |v| v + 1));
    let b = th
        .tx(&lock)
        .hints((4u32, 4u32))
        .run(|ctx| ctx.update(&cell, |v| v + 1));
    let _ = (a, b);
    assert_eq!(cell.load_direct(), 12);

    #[allow(deprecated)]
    let a = th.try_critical(&lock, |ctx| ctx.read(&cell));
    let b = th.tx(&lock).try_run(|ctx| ctx.read(&cell));
    assert_eq!(a.unwrap(), 12);
    assert_eq!(b.unwrap(), 12);

    let hints = TxHints::new().with_stm_retries(6);
    #[allow(deprecated)]
    let a = th.try_critical_with(&lock, hints, |ctx| ctx.read(&cell));
    let b = th.tx(&lock).hints(hints).try_run(|ctx| ctx.read(&cell));
    assert_eq!(a.unwrap(), 12);
    assert_eq!(b.unwrap(), 12);
}

/// `deadline_us` is sugar for a deadline hint, and the request's `hints()`
/// merge keeps explicitly-set fields regardless of call order.
#[test]
fn tx_request_deadline_and_hint_merge_compose() {
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    let th = sys.register();
    let lock = ElidableMutex::new("merge");

    // deadline_us(..) then hints(..) without a deadline: budget survives.
    let r = th
        .tx(&lock)
        .deadline_us(60_000_000)
        .hints(TxHints::new().with_stm_retries(5))
        .try_run(|_ctx| Ok(1u64));
    assert_eq!(r.unwrap(), 1);

    // hints(..) then deadline_us(..): same result.
    let r = th
        .tx(&lock)
        .hints(TxHints::new().with_stm_retries(5))
        .deadline_us(60_000_000)
        .try_run(|_ctx| Ok(1u64));
    assert_eq!(r.unwrap(), 1);

    // A hint-carried deadline wins over an earlier deadline_us: explicit
    // fields in the later hints() call take precedence.
    let early = std::time::Instant::now();
    let r = th
        .tx(&lock)
        .deadline_us(60_000_000)
        .hints(TxHints::new().with_deadline(std::time::Duration::ZERO))
        .try_run(|_ctx| Ok(1u64));
    assert!(
        matches!(r, Err(tle_core::TxError::DeadlineExceeded)),
        "zero deadline must shadow the earlier budget, got {r:?}"
    );
    assert!(early.elapsed() < std::time::Duration::from_secs(30));
}

/// `TryFrom<u8>` round-trips every real discriminant and errors (instead
/// of clamping) on everything else.
#[test]
fn algo_mode_tryfrom_rejects_unknown_discriminants() {
    for mode in ALL_MODES {
        assert_eq!(AlgoMode::try_from(mode as u8), Ok(mode));
    }
    assert_eq!(
        AlgoMode::try_from(AlgoMode::AdaptiveHtm as u8),
        Ok(AlgoMode::AdaptiveHtm)
    );
    assert_eq!(
        AlgoMode::try_from(6u8),
        Ok(AlgoMode::AdaptiveHtmLazy),
        "6 is the safe lazy-subscription mode in every build"
    );
    // 7 is the naive lazy variant, compiled only into dev/check builds;
    // probe availability through the parser rather than cfg so this test
    // states the same fact in both build flavors.
    let unsafe_mode_exists = "lazy-unsafe".parse::<AlgoMode>().is_ok();
    assert_eq!(
        AlgoMode::try_from(7u8).is_ok(),
        unsafe_mode_exists,
        "discriminant 7 and the lazy-unsafe spelling must agree on availability"
    );
    for bad in [8u8, 100, u8::MAX] {
        assert_eq!(AlgoMode::try_from(bad), Err(InvalidAlgoMode(bad)));
    }
}

/// `FromStr` accepts the CLI spellings and reports unknown ones with the
/// full list of valid spellings (what `--mode` prints on bad input).
#[test]
fn algo_mode_fromstr_spellings_and_errors() {
    let cases = [
        ("baseline", AlgoMode::Baseline),
        ("pthread", AlgoMode::Baseline),
        ("stm-spin", AlgoMode::StmSpin),
        ("spin", AlgoMode::StmSpin),
        ("stm", AlgoMode::StmCondvar),
        ("stm-condvar", AlgoMode::StmCondvar),
        ("stm-noquiesce", AlgoMode::StmCondvarNoQuiesce),
        ("noquiesce", AlgoMode::StmCondvarNoQuiesce),
        ("htm", AlgoMode::HtmCondvar),
        ("htm-condvar", AlgoMode::HtmCondvar),
        ("adaptive-htm", AlgoMode::AdaptiveHtm),
        ("adaptive", AlgoMode::AdaptiveHtm),
        ("glibc", AlgoMode::AdaptiveHtm),
        ("adaptive-htm-lazy", AlgoMode::AdaptiveHtmLazy),
        ("lazy", AlgoMode::AdaptiveHtmLazy),
    ];
    for (spelling, want) in cases {
        assert_eq!(spelling.parse::<AlgoMode>(), Ok(want), "{spelling}");
    }
    // The naive lazy spellings resolve only where the variant exists
    // (dev/check builds); both spellings always agree with each other.
    assert_eq!(
        "adaptive-htm-lazy-unsafe".parse::<AlgoMode>().is_ok(),
        "lazy-unsafe".parse::<AlgoMode>().is_ok()
    );
    let err = "quantum".parse::<AlgoMode>().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("unknown algorithm mode \"quantum\""), "{msg}");
    assert!(msg.contains("baseline"), "{msg}");
    assert!(msg.contains("adaptive-htm-lazy"), "{msg}");
    assert!(
        msg.contains("adaptive-htm-lazy-unsafe [dev/check builds only]"),
        "{msg}"
    );
}

/// Locks accept static and owned (dynamically generated) names — the
/// sharded-lock-table case the `&'static str` signature blocked.
#[test]
fn lock_names_static_and_dynamic() {
    let fixed = ElidableMutex::new("fixed-name");
    assert_eq!(fixed.name(), "fixed-name");

    let table: Vec<ElidableMutex> = (0..4)
        .map(|i| ElidableMutex::new(format!("shard-{i}")))
        .collect();
    for (i, lock) in table.iter().enumerate() {
        assert_eq!(lock.name(), format!("shard-{i}"));
    }

    // Dynamically-named locks work as locks, not just as labels.
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    let th = sys.register();
    let cell = tle_base::TCell::new(0u64);
    th.tx(&table[2]).run(|ctx| ctx.write(&cell, 1));
    assert_eq!(cell.load_direct(), 1);
}
