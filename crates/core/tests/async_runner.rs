//! End-to-end coverage for the async runner (`TxRequest::run_async` /
//! `try_run_async` on the in-tree executor): exactness under task
//! multiplexing, waker-driven condvar handoffs, timed-wait cancellation,
//! deadline propagation, and sync/async interop on one system.

use std::sync::Arc;
use tle_base::exec::Exec;
use tle_base::TCell;
use tle_core::{AlgoMode, ElidableMutex, TmSystem, TxCondvar, TxError, ALL_MODES};

fn all_six() -> Vec<AlgoMode> {
    ALL_MODES
        .iter()
        .copied()
        .chain([AlgoMode::AdaptiveHtm, AlgoMode::AdaptiveHtmLazy])
        .collect()
}

#[test]
fn async_counter_exact_under_every_mode() {
    for mode in all_six() {
        let exec = Exec::new(4);
        let sys = Arc::new(TmSystem::new(mode));
        let lock = Arc::new(ElidableMutex::new("actr"));
        let cell = Arc::new(TCell::new(0u64));
        let th = Arc::new(sys.register());
        const TASKS: usize = 48;
        const OPS: u64 = 40;
        let handles: Vec<_> = (0..TASKS)
            .map(|_| {
                let th = Arc::clone(&th);
                let lock = Arc::clone(&lock);
                let cell = Arc::clone(&cell);
                exec.spawn(async move {
                    for _ in 0..OPS {
                        th.tx(&lock)
                            .run_async(|ctx| {
                                let v = ctx.read(&*cell)?;
                                ctx.write(&*cell, v + 1)?;
                                Ok(())
                            })
                            .await;
                    }
                })
            })
            .collect();
        exec.block_on(async move {
            for h in handles {
                h.await;
            }
        });
        assert_eq!(
            cell.load_direct(),
            TASKS as u64 * OPS,
            "lost updates under {mode:?}"
        );
    }
}

#[test]
fn async_tasks_outnumber_slots_and_workers() {
    // Far more logical sessions than executor workers (2) or STM/HTM slots:
    // transient slot claims must multiplex them without deadlock.
    let exec = Exec::new(2);
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    let lock = Arc::new(ElidableMutex::new("many"));
    let cell = Arc::new(TCell::new(0u64));
    let th = Arc::new(sys.register());
    const TASKS: usize = 1_000;
    let handles: Vec<_> = (0..TASKS)
        .map(|_| {
            let th = Arc::clone(&th);
            let lock = Arc::clone(&lock);
            let cell = Arc::clone(&cell);
            exec.spawn(async move {
                th.tx(&lock)
                    .run_async(|ctx| {
                        ctx.update(&*cell, |v| v + 1)?;
                        Ok(())
                    })
                    .await;
            })
        })
        .collect();
    exec.block_on(async move {
        for h in handles {
            h.await;
        }
    });
    assert_eq!(cell.load_direct(), TASKS as u64);
}

#[test]
fn async_producer_consumer_condvar_under_every_mode() {
    for mode in all_six() {
        let exec = Exec::new(3);
        let sys = Arc::new(TmSystem::new(mode));
        let lock = Arc::new(ElidableMutex::new("apc"));
        let cv = Arc::new(TxCondvar::new());
        let flag = Arc::new(TCell::new(0u64));
        let value = Arc::new(TCell::new(0u64));
        let th = Arc::new(sys.register());

        let consumer = {
            let th = Arc::clone(&th);
            let lock = Arc::clone(&lock);
            let cv = Arc::clone(&cv);
            let flag = Arc::clone(&flag);
            let value = Arc::clone(&value);
            exec.spawn(async move {
                th.tx(&lock)
                    .run_async(|ctx| {
                        if ctx.read(&*flag)? == 0 {
                            return ctx.wait(&cv, None).map(|_| 0);
                        }
                        ctx.read(&*value)
                    })
                    .await
            })
        };

        let producer = {
            let th = Arc::clone(&th);
            let lock = Arc::clone(&lock);
            let cv = Arc::clone(&cv);
            let flag = Arc::clone(&flag);
            let value = Arc::clone(&value);
            exec.spawn(async move {
                // Give the consumer a head start so the wait path is
                // actually exercised (a pre-set flag would short-circuit).
                tle_base::exec::sleep(std::time::Duration::from_millis(20)).await;
                th.tx(&lock)
                    .run_async(|ctx| {
                        ctx.write(&*value, 55u64)?;
                        ctx.write(&*flag, 1u64)?;
                        ctx.signal(&cv)?;
                        Ok(())
                    })
                    .await;
            })
        };

        let got = exec.block_on(async move {
            producer.await;
            consumer.await
        });
        assert_eq!(got, 55, "consumer read wrong value under {mode:?}");
    }
}

#[test]
fn async_broadcast_wakes_every_waiter() {
    for mode in [
        AlgoMode::StmCondvar,
        AlgoMode::HtmCondvar,
        AlgoMode::AdaptiveHtm,
    ] {
        let exec = Exec::new(4);
        let sys = Arc::new(TmSystem::new(mode));
        let lock = Arc::new(ElidableMutex::new("bcast"));
        let cv = Arc::new(TxCondvar::new());
        let flag = Arc::new(TCell::new(false));
        let th = Arc::new(sys.register());
        const WAITERS: usize = 32;
        let waiters: Vec<_> = (0..WAITERS)
            .map(|_| {
                let th = Arc::clone(&th);
                let lock = Arc::clone(&lock);
                let cv = Arc::clone(&cv);
                let flag = Arc::clone(&flag);
                exec.spawn(async move {
                    th.tx(&lock)
                        .run_async(|ctx| {
                            if !ctx.read(&*flag)? {
                                return ctx.wait(&cv, None);
                            }
                            Ok(())
                        })
                        .await;
                })
            })
            .collect();
        let signaller = {
            let th = Arc::clone(&th);
            let lock = Arc::clone(&lock);
            let cv = Arc::clone(&cv);
            let flag = Arc::clone(&flag);
            exec.spawn(async move {
                tle_base::exec::sleep(std::time::Duration::from_millis(25)).await;
                th.tx(&lock)
                    .run_async(|ctx| {
                        ctx.write(&*flag, true)?;
                        ctx.broadcast(&cv)?;
                        Ok(())
                    })
                    .await;
            })
        };
        exec.block_on(async move {
            signaller.await;
            for w in waiters {
                w.await;
            }
        });
    }
}

#[test]
fn async_timed_wait_expires_and_cancels() {
    for mode in [
        AlgoMode::StmCondvar,
        AlgoMode::HtmCondvar,
        AlgoMode::AdaptiveHtm,
        AlgoMode::Baseline,
    ] {
        let exec = Exec::new(2);
        let sys = Arc::new(TmSystem::new(mode));
        let lock = Arc::new(ElidableMutex::new("atimed"));
        let th = Arc::new(sys.register());
        let cv = Arc::new(TxCondvar::new());
        let never = Arc::new(TCell::new(false));
        let t0 = std::time::Instant::now();
        let r = {
            let th = Arc::clone(&th);
            let lock = Arc::clone(&lock);
            let cv = Arc::clone(&cv);
            let never = Arc::clone(&never);
            exec.block_on(async move {
                let mut wakes = 0u32;
                th.tx(&lock)
                    .run_async(|ctx| {
                        if !ctx.read(&*never)? {
                            wakes += 1;
                            if wakes > 2 {
                                return Ok(false);
                            }
                            return ctx
                                .wait(&cv, Some(std::time::Duration::from_millis(10)))
                                .map(|_| false);
                        }
                        Ok(true)
                    })
                    .await
            })
        };
        assert!(!r, "flag never set under {mode:?}");
        assert!(
            t0.elapsed() >= std::time::Duration::from_millis(15),
            "timed waits returned early under {mode:?}"
        );
        // The cancelled ring entries must not swallow a later signal.
        let flag = Arc::new(TCell::new(false));
        let ok = {
            let th = Arc::clone(&th);
            let lock = Arc::clone(&lock);
            let cv = Arc::clone(&cv);
            let flag = Arc::clone(&flag);
            exec.block_on(async move {
                th.tx(&lock)
                    .run_async(|ctx| {
                        ctx.write(&*flag, true)?;
                        ctx.signal(&cv)?;
                        Ok(true)
                    })
                    .await
            })
        };
        assert!(ok, "post-cancel signal failed under {mode:?}");
    }
}

#[test]
fn async_deadline_surfaces_error_via_try_run() {
    let exec = Exec::new(2);
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    let lock = Arc::new(ElidableMutex::new("adl"));
    let th = Arc::new(sys.register());
    let r: Result<(), TxError> = {
        let th = Arc::clone(&th);
        let lock = Arc::clone(&lock);
        exec.block_on(async move {
            let req = th.tx(&lock).deadline_us(1);
            // Let the 1µs budget lapse before dispatch.
            std::thread::sleep(std::time::Duration::from_millis(1));
            req.try_run_async(|_ctx| Ok(())).await
        })
    };
    assert!(matches!(r, Err(TxError::DeadlineExceeded)), "got {r:?}");
}

#[test]
fn async_deadline_clamps_unbounded_wait() {
    // An unbounded wait() under a section deadline must wake at the
    // deadline (clamped by ctx) rather than sleeping forever: the runner
    // then observes the expired budget and surfaces the error.
    let exec = Exec::new(2);
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    let lock = Arc::new(ElidableMutex::new("aclamp"));
    let th = Arc::new(sys.register());
    let cv = Arc::new(TxCondvar::new());
    let never = Arc::new(TCell::new(false));
    let t0 = std::time::Instant::now();
    let r: Result<(), TxError> = {
        let th = Arc::clone(&th);
        let lock = Arc::clone(&lock);
        let cv = Arc::clone(&cv);
        let never = Arc::clone(&never);
        exec.block_on(async move {
            th.tx(&lock)
                .deadline_us(20_000)
                .try_run_async(|ctx| {
                    if !ctx.read(&*never)? {
                        return ctx.wait(&cv, None);
                    }
                    Ok(())
                })
                .await
        })
    };
    assert!(
        matches!(r, Err(TxError::DeadlineExceeded)),
        "expected deadline error, got {r:?}"
    );
    let elapsed = t0.elapsed();
    assert!(
        elapsed >= std::time::Duration::from_millis(19),
        "woke before the deadline: {elapsed:?}"
    );
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "unbounded wait was not clamped: {elapsed:?}"
    );
}

#[test]
fn sync_and_async_sections_interleave_exactly() {
    for mode in [
        AlgoMode::Baseline,
        AlgoMode::StmCondvar,
        AlgoMode::HtmCondvar,
        AlgoMode::AdaptiveHtm,
    ] {
        let exec = Exec::new(2);
        let sys = Arc::new(TmSystem::new(mode));
        let lock = Arc::new(ElidableMutex::new("mix"));
        let cell = Arc::new(TCell::new(0u64));
        const OPS: u64 = 400;
        let sync_threads: Vec<_> = (0..2)
            .map(|_| {
                let sys = Arc::clone(&sys);
                let lock = Arc::clone(&lock);
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let th = sys.register();
                    for _ in 0..OPS {
                        th.tx(&lock).run(|ctx| {
                            ctx.update(&*cell, |v| v + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        let th = Arc::new(sys.register());
        let tasks: Vec<_> = (0..8)
            .map(|_| {
                let th = Arc::clone(&th);
                let lock = Arc::clone(&lock);
                let cell = Arc::clone(&cell);
                exec.spawn(async move {
                    for _ in 0..OPS / 8 {
                        th.tx(&lock)
                            .run_async(|ctx| {
                                ctx.update(&*cell, |v| v + 1)?;
                                Ok(())
                            })
                            .await;
                    }
                })
            })
            .collect();
        exec.block_on(async move {
            for t in tasks {
                t.await;
            }
        });
        for t in sync_threads {
            t.join().unwrap();
        }
        assert_eq!(
            cell.load_direct(),
            2 * OPS + OPS,
            "sync/async interleaving lost updates under {mode:?}"
        );
    }
}

#[test]
fn async_unsafe_op_serializes_and_completes() {
    for mode in all_six() {
        let exec = Exec::new(2);
        let sys = Arc::new(TmSystem::new(mode));
        let lock = Arc::new(ElidableMutex::new("aio"));
        let th = Arc::new(sys.register());
        let cell = Arc::new(TCell::new(0u64));
        let out = {
            let th = Arc::clone(&th);
            let lock = Arc::clone(&lock);
            let cell = Arc::clone(&cell);
            exec.block_on(async move {
                th.tx(&lock)
                    .run_async(|ctx| {
                        ctx.unsafe_op()?;
                        let v = ctx.read(&*cell)?;
                        ctx.write(&*cell, v + 1)?;
                        Ok(v)
                    })
                    .await
            })
        };
        assert_eq!(out, 0);
        assert_eq!(
            cell.load_direct(),
            1,
            "unsafe path lost the write under {mode:?}"
        );
    }
}

/// PR-8's cancellation caveat, now fixed: dropping an async critical
/// section while it is suspended on a committed condvar wait must remove
/// its ring entry (`WaitEntryGuard`), so (a) the ring compacts clean and
/// (b) a later signal is delivered to a live waiter instead of being
/// consumed by the ghost entry.
#[test]
fn async_dropped_wait_future_self_cancels_ring_entry() {
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Condvar as OsCondvar, Mutex as OsMutex};
    use std::task::{Context, Poll, Wake, Waker};

    struct FlagSignal {
        woken: OsMutex<bool>,
        cv: OsCondvar,
    }
    impl Wake for FlagSignal {
        fn wake(self: Arc<Self>) {
            self.wake_by_ref();
        }
        fn wake_by_ref(self: &Arc<Self>) {
            let mut woken = self.woken.lock().unwrap_or_else(|e| e.into_inner());
            *woken = true;
            self.cv.notify_one();
        }
    }

    /// Poll until the future truly suspends on an armed waker (registered
    /// wait), panicking if it completes first.
    fn poll_to_suspension<F: Future>(fut: &mut Pin<&mut F>, signal: &Arc<FlagSignal>) {
        let waker = Waker::from(Arc::clone(signal));
        let mut cx = Context::from_waker(&waker);
        for _ in 0..10_000 {
            if fut.as_mut().poll(&mut cx).is_ready() {
                panic!("future completed before suspending on the wait");
            }
            let mut woken = signal.woken.lock().unwrap_or_else(|e| e.into_inner());
            if *woken {
                *woken = false; // hot re-poll (yield_now backoff etc.)
            } else {
                return; // truly parked on the waiter
            }
        }
        panic!("future never suspended");
    }

    fn poll_to_ready<F: Future>(fut: &mut Pin<&mut F>, signal: &Arc<FlagSignal>) -> F::Output {
        let waker = Waker::from(Arc::clone(signal));
        let mut cx = Context::from_waker(&waker);
        loop {
            if let Poll::Ready(v) = fut.as_mut().poll(&mut cx) {
                return v;
            }
            let mut woken = signal.woken.lock().unwrap_or_else(|e| e.into_inner());
            while !*woken {
                woken = signal.cv.wait(woken).unwrap_or_else(|e| e.into_inner());
            }
            *woken = false;
        }
    }

    for mode in [
        AlgoMode::StmCondvar,
        AlgoMode::HtmCondvar,
        AlgoMode::AdaptiveHtm,
        AlgoMode::AdaptiveHtmLazy,
    ] {
        let sys = Arc::new(TmSystem::new(mode));
        let lock = Arc::new(ElidableMutex::new("dropwait"));
        let cv = Arc::new(TxCondvar::new());
        let flag = Arc::new(TCell::new(0u64));
        let th = Arc::new(sys.register());
        let signal = Arc::new(FlagSignal {
            woken: OsMutex::new(false),
            cv: OsCondvar::new(),
        });

        // Suspend a wait, then drop it mid-wait.
        {
            let fut = th.tx(&lock).run_async(|ctx| {
                if ctx.read(&*flag)? == 0 {
                    return ctx.wait(&cv, None);
                }
                Ok(())
            });
            let mut fut = std::pin::pin!(fut);
            poll_to_suspension(&mut fut, &signal);
            assert_eq!(cv.approx_len(), 1, "wait not registered under {mode:?}");
        } // <- dropped here; the guard must remove the ring entry

        // A fresh waiter registers; enqueue-side compaction walks the head
        // past the cancelled slot, so the ring holds exactly one live
        // entry. A ghost entry would leave two.
        let fut2 = th.tx(&lock).run_async(|ctx| {
            if ctx.read(&*flag)? == 0 {
                return ctx.wait(&cv, None);
            }
            Ok(())
        });
        let mut fut2 = std::pin::pin!(fut2);
        poll_to_suspension(&mut fut2, &signal);
        assert_eq!(
            cv.approx_len(),
            1,
            "ghost ring entry survived the dropped wait under {mode:?}"
        );

        // One signal must reach the live waiter (a ghost would consume it).
        let producer = {
            let sys = Arc::clone(&sys);
            let lock = Arc::clone(&lock);
            let cv = Arc::clone(&cv);
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                let th = sys.register();
                th.tx(&lock).run(|ctx| {
                    ctx.write(&*flag, 1u64)?;
                    ctx.signal(&cv)?;
                    Ok(())
                });
            })
        };
        producer.join().unwrap();
        poll_to_ready(&mut fut2, &signal);
        assert_eq!(cv.approx_len(), 0, "ring not drained under {mode:?}");
    }
}
