//! Controller-level integration tests for the per-lock adaptive policy:
//! hysteresis (no flapping), decision determinism, the `*NoQuiesce`
//! opt-in contract, and counter exactness under continuous mode flips.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tle_base::TCell;
use tle_core::{decide, AdaptiveConfig, AlgoMode, ElidableMutex, SwitchReason, TmSystem};

fn adaptive_sys(cfg: AdaptiveConfig) -> Arc<TmSystem> {
    Arc::new(
        TmSystem::builder()
            .mode(AlgoMode::HtmCondvar)
            .adaptive(true)
            .adaptive_config(cfg)
            .build(),
    )
}

/// An oscillating synthetic window (storm evidence one step, clean the
/// next) must not flap the lock: every pair of consecutive switches is
/// separated by at least `min_dwell_steps` controller steps.
#[test]
fn oscillating_window_does_not_flap() {
    let cfg = AdaptiveConfig {
        min_dwell_steps: 4,
        min_window_samples: 8,
        ..AdaptiveConfig::default()
    };
    let sys = adaptive_sys(cfg);
    let lock = ElidableMutex::new("flapper");
    sys.adopt_lock(&lock);

    for step in 0..64 {
        if step % 2 == 0 {
            // Pure conflict storm: would demote immediately if trusted.
            lock.synthesize_window(1, 40, 0, 10);
        } else {
            // Spotless: would promote immediately if trusted.
            lock.synthesize_window(50, 0, 0, 0);
        }
        sys.controller_step();
    }

    let switches = sys.mode_switches();
    assert!(
        !switches.is_empty(),
        "the storm evidence should move the lock at least once"
    );
    for pair in switches.windows(2) {
        let gap = pair[1].step - pair[0].step;
        assert!(
            gap >= 4,
            "flap: switches {} and {} only {gap} steps apart",
            pair[0],
            pair[1]
        );
    }
}

/// Identical step/window schedules produce identical switch sequences —
/// the decision path contains no hidden nondeterminism (no wall clock, no
/// RNG).
#[test]
fn identical_schedules_decide_identically() {
    let run = || {
        let cfg = AdaptiveConfig {
            min_dwell_steps: 2,
            min_window_samples: 8,
            baseline_probe_steps: 6,
            ..AdaptiveConfig::default()
        };
        let sys = adaptive_sys(cfg);
        let lock = ElidableMutex::new("replay");
        sys.adopt_lock(&lock);
        // Capacity storm, then conflict storm, then quiet: walks the lock
        // HTM -> STM -> Baseline -> (probe) HTM.
        for step in 0..40 {
            match step {
                0..=9 => lock.synthesize_window(2, 1, 30, 4),
                10..=19 => lock.synthesize_window(2, 30, 0, 6),
                _ => lock.synthesize_window(40, 0, 0, 0),
            }
            sys.controller_step();
        }
        sys.mode_switches()
            .into_iter()
            .map(|e| format!("{e}"))
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

/// `decide` never targets a `*NoQuiesce` (or `AdaptiveHtm`) mode, for any
/// mode/window combination: skipping the privatization drain is an
/// application contract, not a performance inference.
#[test]
fn decide_never_targets_no_quiesce() {
    let cfg = AdaptiveConfig {
        min_dwell_steps: 0,
        min_window_samples: 0,
        ..AdaptiveConfig::default()
    };
    let mut grid = Vec::new();
    for commits in [0u64, 1, 10, 100] {
        for conflict in [0u64, 1, 50] {
            for capacity in [0u64, 1, 50] {
                for serial in [0u64, 1, 50] {
                    grid.push(tle_base::WindowSnapshot {
                        commits,
                        conflict_aborts: conflict,
                        capacity_aborts: capacity,
                        other_aborts: 0,
                        serial,
                        quiesce_ns: 0,
                    });
                }
            }
        }
    }
    let reasons = [
        None,
        Some(SwitchReason::Capacity),
        Some(SwitchReason::ConflictStorm),
        Some(SwitchReason::Promotion),
        Some(SwitchReason::Probe),
        Some(SwitchReason::Manual),
    ];
    for mode in tle_core::ALL_MODES {
        for snap in &grid {
            for dwell in [0u32, 10, 1000] {
                for last in reasons {
                    if let Some((to, _)) = decide(mode, snap, dwell, last, &cfg) {
                        assert_ne!(to, AlgoMode::StmCondvarNoQuiesce, "from {mode:?} {snap:?}");
                        assert_ne!(to, AlgoMode::AdaptiveHtm, "from {mode:?} {snap:?}");
                    }
                }
            }
        }
    }
    // And the controller never *leaves* an opted-in NoQuiesce lock: the
    // opt-in is a correctness contract in both directions.
    for snap in &grid {
        assert_eq!(
            decide(AlgoMode::StmCondvarNoQuiesce, snap, 1000, None, &cfg),
            None
        );
    }
}

/// A lock is never observed in NoQuiesce mode unless the application
/// opted it in, even while the controller is actively flipping it.
#[test]
fn no_quiesce_requires_per_lock_opt_in() {
    let sys = adaptive_sys(AdaptiveConfig {
        min_dwell_steps: 1,
        min_window_samples: 1,
        baseline_probe_steps: 1,
        ..AdaptiveConfig::default()
    });
    let lock = ElidableMutex::new("contract");
    sys.adopt_lock(&lock);
    assert!(!lock.is_no_quiesce());
    for step in 0..50 {
        lock.synthesize_window(
            if step % 3 == 0 { 50 } else { 1 },
            if step % 3 == 1 { 50 } else { 0 },
            if step % 3 == 2 { 50 } else { 0 },
            3,
        );
        sys.controller_step();
        assert!(!lock.is_no_quiesce(), "controller set NoQuiesce at {step}");
        assert_ne!(
            lock.resolved_mode(sys.mode()),
            AlgoMode::StmCondvarNoQuiesce
        );
    }
    for ev in sys.mode_switches() {
        assert_ne!(ev.to, AlgoMode::StmCondvarNoQuiesce, "{ev}");
    }
    // Opt-in (and only opt-in) turns it on; clearing turns it off.
    sys.set_lock_no_quiesce(&lock, true);
    assert!(lock.is_no_quiesce());
    sys.set_lock_no_quiesce(&lock, false);
    assert!(!lock.is_no_quiesce());
}

/// Worker threads hammer one counter while the main thread flips the
/// lock's mode through every controller-eligible target; the count must
/// come out exact (the mode-flip total-exclusion protocol loses nothing).
#[test]
fn counter_exact_under_continuous_flips() {
    const WORKERS: usize = 3;
    const OPS: u64 = 2_000;
    let sys = Arc::new(
        TmSystem::builder()
            .mode(AlgoMode::HtmCondvar)
            .adaptive(true)
            .build(),
    );
    let lock = ElidableMutex::new("flip-counter");
    sys.adopt_lock(&lock);
    let counter = Arc::new(TCell::new(0u64));
    let stop = Arc::new(AtomicBool::new(false));

    let flipper = {
        let sys = Arc::clone(&sys);
        let lock = lock.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let targets = [
                AlgoMode::Baseline,
                AlgoMode::StmSpin,
                AlgoMode::StmCondvar,
                AlgoMode::HtmCondvar,
                AlgoMode::AdaptiveHtm,
            ];
            let mut i = 0;
            while !stop.load(Ordering::SeqCst) {
                sys.set_lock_mode(&lock, targets[i % targets.len()]);
                i += 1;
                std::thread::yield_now();
            }
            sys.clear_lock_mode(&lock);
        })
    };

    let workers: Vec<_> = (0..WORKERS)
        .map(|_| {
            let sys = Arc::clone(&sys);
            let lock = lock.clone();
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                let th = sys.register();
                for _ in 0..OPS {
                    th.tx(&lock).run(|ctx| {
                        let v = ctx.read(&*counter)?;
                        ctx.write(&*counter, v + 1)?;
                        Ok(())
                    });
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::SeqCst);
    flipper.join().unwrap();

    assert_eq!(counter.load_direct(), WORKERS as u64 * OPS);
    assert!(
        lock.switches() > 0,
        "the flipper should have actually flipped"
    );
}
