//! Deadline- and admission-path tests (the degradation plane's error
//! surface).
//!
//! A section's retry-time budget ([`TxHints::with_deadline`]) is checked at
//! dispatch and before every retry tier, never mid-attempt — so an expired
//! budget must surface as `Err(DeadlineExceeded)` from `try_critical_with`
//! with *no effects*, while the infallible API (which has no error channel)
//! must complete by serializing instead. A condvar wait inside a budgeted
//! section clamps its park time to the remaining budget, so a waiter nobody
//! signals wakes at the deadline rather than sleeping forever; the
//! signal-races-deadline test is the deadline twin of
//! `cancel_paths::signal_races_timeout` — the expiry's `cancel_wait` races
//! a live signaller's dequeue for the same ring entry. The admission tests
//! walk a lock down the whole elide → serialize → shed ladder via the real
//! controller and back, proving `Overloaded` is reachable, counted, and
//! recoverable.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tle_base::trace::TraceKind;
use tle_base::TCell;
use tle_core::{
    AdmissionConfig, AdmissionStep, AlgoMode, ElidableMutex, TmSystem, TxCondvar, TxError, TxHints,
};

/// A zero budget is already spent when the dispatch gate first looks at it:
/// the fallible entry point must refuse before any speculation, leave no
/// effects, and count the refusal exactly once.
fn zero_budget_refused(mode: AlgoMode) {
    let sys = Arc::new(TmSystem::new(mode));
    let lock = ElidableMutex::new("zero-budget");
    let cell = TCell::new(0u64);
    let th = sys.register();

    let res = th
        .tx(&lock)
        .hints(TxHints::new().with_deadline(Duration::ZERO))
        .try_run(|ctx| {
            let v = ctx.read(&cell)?;
            ctx.write(&cell, v + 1)?;
            Ok(())
        });
    assert!(
        matches!(res, Err(TxError::DeadlineExceeded)),
        "{mode:?}: zero budget produced {res:?}"
    );
    assert_eq!(
        cell.load_direct(),
        0,
        "{mode:?}: refused section had effects"
    );
    assert_eq!(sys.stats.snapshot().deadline_exceeded, 1);

    // The infallible API cannot surface the error; an expired budget must
    // instead bound retries by forcing the serial path — and still commit.
    th.tx(&lock)
        .hints(TxHints::new().with_deadline(Duration::ZERO))
        .run(|ctx| {
            let v = ctx.read(&cell)?;
            ctx.write(&cell, v + 1)?;
            Ok(())
        });
    assert_eq!(cell.load_direct(), 1, "{mode:?}: infallible section lost");
    // The refusal count must not have moved: serialization is not expiry.
    assert_eq!(sys.stats.snapshot().deadline_exceeded, 1);
}

#[test]
fn zero_budget_refused_under_stm() {
    zero_budget_refused(AlgoMode::StmCondvar);
}

#[test]
fn zero_budget_refused_under_htm() {
    zero_budget_refused(AlgoMode::HtmCondvar);
}

/// An *untimed* wait inside a budgeted section must not outsleep the
/// deadline: the clamp turns `wait(cv, None)` into a park bounded by the
/// remaining budget, and the post-wakeup retry gate converts the expiry
/// into `Err(DeadlineExceeded)`. Without the clamp this test hangs.
fn untimed_wait_clamped_to_deadline(mode: AlgoMode) {
    let sys = Arc::new(TmSystem::new(mode));
    let lock = ElidableMutex::new("clamp");
    let cv = TxCondvar::new();
    let never = TCell::new(false);
    let th = sys.register();

    let budget = Duration::from_millis(20);
    let t0 = Instant::now();
    let res = th
        .tx(&lock)
        .hints(TxHints::new().with_deadline(budget))
        .try_run(|ctx| {
            if ctx.read(&never)? {
                Ok(())
            } else {
                ctx.wait(&cv, None).map(|_| ())
            }
        });
    let elapsed = t0.elapsed();
    assert!(
        matches!(res, Err(TxError::DeadlineExceeded)),
        "{mode:?}: unsignalled wait produced {res:?}"
    );
    assert!(
        elapsed >= budget,
        "{mode:?}: returned at {elapsed:?}, before the {budget:?} budget"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "{mode:?}: wait was not clamped (took {elapsed:?})"
    );
    assert_eq!(sys.stats.snapshot().deadline_exceeded, 1);
}

#[test]
fn untimed_wait_clamped_under_stm() {
    untimed_wait_clamped_to_deadline(AlgoMode::StmCondvar);
}

#[test]
fn untimed_wait_clamped_under_htm() {
    untimed_wait_clamped_to_deadline(AlgoMode::HtmCondvar);
}

/// A signaller firing right as deadlines expire: the expiry path's
/// `cancel_wait` races the signaller's dequeue for the same ring entry,
/// exactly like `cancel_paths::signal_races_timeout` but with the timeout
/// supplied by the deadline clamp instead of the wait itself. Every waiter
/// must terminate with `DeadlineExceeded` (the predicate never turns true
/// within its budget), every expiry must be counted, and the ring must
/// still deliver wakeups afterwards — a double-claimed or leaked entry
/// would swallow the round-trip signal.
fn signal_races_deadline(mode: AlgoMode) {
    const WAITERS: usize = 3;
    let sys = Arc::new(TmSystem::new(mode));
    let lock = Arc::new(ElidableMutex::new("deadline-race"));
    let cv = Arc::new(TxCondvar::new());
    let flag = Arc::new(TCell::new(false));
    let stop = Arc::new(AtomicBool::new(false));

    let waiters: Vec<_> = (0..WAITERS)
        .map(|i| {
            let (sys, lock, cv, flag) = (
                Arc::clone(&sys),
                Arc::clone(&lock),
                Arc::clone(&cv),
                Arc::clone(&flag),
            );
            std::thread::spawn(move || {
                let th = sys.register();
                // Staggered budgets line up differently with the signal
                // cadence on each run, widening race coverage.
                let budget = Duration::from_micros(500 + 300 * i as u64);
                th.tx(&lock)
                    .hints(TxHints::new().with_deadline(budget))
                    .try_run(|ctx| {
                        if ctx.read(&*flag)? {
                            Ok(())
                        } else {
                            ctx.wait(&cv, None).map(|_| ())
                        }
                    })
            })
        })
        .collect();

    let signaller = {
        let (sys, lock, cv, stop) = (
            Arc::clone(&sys),
            Arc::clone(&lock),
            Arc::clone(&cv),
            Arc::clone(&stop),
        );
        std::thread::spawn(move || {
            let th = sys.register();
            while !stop.load(Ordering::Acquire) {
                th.tx(&lock).run(|ctx| ctx.signal(&cv));
                std::thread::sleep(Duration::from_micros(400));
            }
        })
    };

    // The flag stays false far longer than any budget, so a signalled
    // waiter re-runs, re-waits, and ultimately expires.
    std::thread::sleep(Duration::from_millis(50));
    for w in waiters {
        let res = w.join().expect("waiter wedged: deadline never fired");
        assert!(
            matches!(res, Err(TxError::DeadlineExceeded)),
            "{mode:?}: racing waiter produced {res:?}"
        );
    }
    stop.store(true, Ordering::Release);
    signaller.join().unwrap();
    assert_eq!(
        sys.stats.snapshot().deadline_exceeded,
        WAITERS as u64,
        "{mode:?}: every expiry counted exactly once"
    );

    // Cancelled residue compacts on the next enqueue; a full round trip
    // proves neither side of the race left a claimed-but-live entry.
    let released = Arc::new(TCell::new(false));
    let waiter = {
        let (sys, lock, cv, released) = (
            Arc::clone(&sys),
            Arc::clone(&lock),
            Arc::clone(&cv),
            Arc::clone(&released),
        );
        std::thread::spawn(move || {
            let th = sys.register();
            th.tx(&lock).run(|ctx| {
                if ctx.read(&*released)? {
                    Ok(())
                } else {
                    ctx.wait(&cv, None).map(|_| ())
                }
            });
        })
    };
    std::thread::sleep(Duration::from_millis(20));
    let th = sys.register();
    th.tx(&lock).run(|ctx| {
        ctx.write(&*released, true)?;
        ctx.signal(&cv)?;
        Ok(())
    });
    waiter
        .join()
        .expect("round-trip waiter wedged: signal lost");
}

#[test]
fn signal_races_deadline_under_stm() {
    signal_races_deadline(AlgoMode::StmCondvar);
}

#[test]
fn signal_races_deadline_under_htm() {
    signal_races_deadline(AlgoMode::HtmCondvar);
}

/// Walk a lock down the full degradation ladder through the *real*
/// controller (queue-peak signal, no synthetic stepping) and back up:
/// Shed must refuse fallible sections with `Overloaded` (counted), still
/// serve infallible ones by serializing, and recover once the queue
/// drains — with the high-water mark remembering the excursion.
#[test]
fn overload_shed_is_reachable_counted_and_recoverable() {
    let cfg = AdmissionConfig {
        min_dwell_steps: 0,
        // Isolate the queue signal: rate thresholds can never fire.
        min_window_samples: u64::MAX,
        serialize_abort_rate: 2.0,
        serialize_fallback_rate: 2.0,
        shed_queue_depth: 1,
        recover_queue_depth: 0,
        recover_probe_steps: 1,
    };
    let sys = Arc::new(
        TmSystem::builder()
            .mode(AlgoMode::StmCondvar)
            .admission_config(cfg)
            .build(),
    );
    let lock = ElidableMutex::new("overload");
    sys.adopt_lock(&lock);
    let cell = TCell::new(0u64);
    let th = sys.register();
    let bump = |ctx: &mut tle_core::TxCtx| {
        let v = ctx.read(&cell)?;
        ctx.write(&cell, v + 1)?;
        Ok(())
    };

    assert_eq!(lock.admission_step(), AdmissionStep::Elide);
    // One dispatched section leaves a queue peak of 1 ≥ shed_queue_depth,
    // even though it commits cleanly — the peak gauge, not the
    // instantaneous depth, is what the controller samples.
    th.tx(&lock).run(bump);
    assert_eq!(sys.controller_step(), 1);
    assert_eq!(lock.admission_step(), AdmissionStep::Serialize);
    // A serialized section still completes (and still peaks the queue).
    th.tx(&lock).run(bump);
    assert_eq!(sys.controller_step(), 1);
    assert_eq!(lock.admission_step(), AdmissionStep::Shed);

    // Shed refuses fallible sections at dispatch, effect-free and counted.
    let res = th.tx(&lock).try_run(bump);
    assert!(
        matches!(res, Err(TxError::Overloaded)),
        "shed step produced {res:?}"
    );
    assert_eq!(cell.load_direct(), 2);
    assert_eq!(sys.stats.sheds.get(), 1);
    // Infallible sections cannot observe errors; Shed serializes them.
    th.tx(&lock).run(bump);
    assert_eq!(cell.load_direct(), 3);

    // Recovery: the refused + serialized sections above peaked the queue
    // once more, so the first quiet step holds; the next two walk back.
    assert_eq!(sys.controller_step(), 0);
    assert_eq!(lock.admission_step(), AdmissionStep::Shed);
    assert_eq!(sys.controller_step(), 1);
    assert_eq!(lock.admission_step(), AdmissionStep::Serialize);
    assert_eq!(sys.controller_step(), 1);
    assert_eq!(lock.admission_step(), AdmissionStep::Elide);
    assert!(th.tx(&lock).try_run(bump).is_ok());
    assert_eq!(cell.load_direct(), 4);

    // The ladder recovered, but the high-water mark records the excursion.
    assert_eq!(lock.admission_high_water(), AdmissionStep::Shed);
    assert_eq!(sys.stats.snapshot().deadline_exceeded, 0);
}

/// Without admission control configured, the ladder never engages — the
/// fallible API is infallible in practice on an idle lock.
#[test]
fn admission_off_never_sheds() {
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    assert!(!sys.admission_enabled());
    let lock = ElidableMutex::new("no-admission");
    sys.adopt_lock(&lock); // no-op: neither controller configured
    let th = sys.register();
    for _ in 0..50 {
        assert!(th.tx(&lock).try_run(|_| Ok(())).is_ok());
    }
    assert_eq!(sys.controller_step(), 0);
    assert_eq!(lock.admission_step(), AdmissionStep::Elide);
    assert_eq!(sys.stats.sheds.get(), 0);
}

/// The observability contract downstream tools rely on: trace kinds 16/17
/// and their labels are wire format for `tle-trace` dumps, and the ladder
/// steps' labels appear in reports. Pinned so a renumbering shows up here
/// and not in a consumer.
#[test]
fn degradation_trace_kinds_and_labels_are_pinned() {
    assert_eq!(TraceKind::DeadlineExceeded as u8, 16);
    assert_eq!(TraceKind::Shed as u8, 17);
    assert_eq!(TraceKind::DeadlineExceeded.label(), "deadline-exceeded");
    assert_eq!(TraceKind::Shed.label(), "shed");
    assert_eq!(TraceKind::ALL.len(), 18);

    assert_eq!(AdmissionStep::Elide.label(), "elide");
    assert_eq!(AdmissionStep::Serialize.label(), "serialize");
    assert_eq!(AdmissionStep::Shed.label(), "shed");
    assert_eq!(
        AdmissionStep::ALL,
        [
            AdmissionStep::Elide,
            AdmissionStep::Serialize,
            AdmissionStep::Shed
        ]
    );
}
