//! Recovery-path regression tests driven by the fault-injection oracle:
//! the starvation-escalation ladder, the quiescence watchdog, and panic
//! safety of the serial gate and the elidable lock.
//!
//! The oracle is process-global, so every test that installs a plan holds
//! the `GUARD` mutex (integration tests in one binary run concurrently).

use std::sync::{Arc, Mutex, MutexGuard};
use tle_base::fault::{self, FaultPlan, FaultRule, Hazard};
use tle_base::TCell;
use tle_core::{AlgoMode, ElidableMutex, TlePolicy, TmSystem, TxError, TxHints};

fn guard() -> MutexGuard<'static, ()> {
    static M: Mutex<()> = Mutex::new(());
    M.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn escalation_ladder_grants_serial_slot_under_forced_abort_storm() {
    let _g = guard();
    // Every HTM access aborts with a forced conflict, on every attempt of
    // every tick — without the ladder this livelocks once the per-section
    // retry budget is made large.
    fault::install(
        FaultPlan::new(0xA11CE).rule(FaultRule::new(Hazard::HtmConflict, 1).per_tick(u32::MAX)),
    );
    let policy = TlePolicy {
        htm_retries: 1_000, // the ladder, not the budget, must serialize us
        escalation_bound: 4,
        ..TlePolicy::default()
    };
    let sys = Arc::new(
        TmSystem::builder()
            .mode(AlgoMode::HtmCondvar)
            .policy(policy)
            .build(),
    );
    let lock = ElidableMutex::new("storm");
    let cell = TCell::new(0u64);
    let th = sys.register();
    const SECTIONS: u64 = 3;
    for _ in 0..SECTIONS {
        th.tx(&lock).run(|ctx| {
            let v = ctx.read(&cell)?;
            ctx.write(&cell, v + 1)?;
            Ok(())
        });
    }
    fault::clear();
    assert_eq!(cell.load_direct(), SECTIONS, "every section must complete");
    let snap = sys.stats.snapshot();
    assert!(
        snap.escalations >= SECTIONS,
        "each stormed section should escalate exactly once (got {})",
        snap.escalations
    );
    assert_eq!(
        th.consecutive_aborts(),
        0,
        "escalation consumes the consecutive-abort count"
    );
    // With the plan cleared the same section commits concurrently again.
    th.tx(&lock).run(|ctx| {
        let v = ctx.read(&cell)?;
        ctx.write(&cell, v + 1)?;
        Ok(())
    });
    assert_eq!(cell.load_direct(), SECTIONS + 1);
}

#[test]
fn quiesce_watchdog_trips_on_injected_stall_then_drains() {
    let _g = guard();
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    let lock = ElidableMutex::new("drain");
    let cell = TCell::new(0u64);
    // Any slow-path drain now exceeds the deadline immediately; the
    // injected stall forces the slow path even with no concurrent readers.
    sys.stm.set_quiesce_deadline_ns(1);
    fault::install(
        FaultPlan::new(0xD06).rule(FaultRule::new(Hazard::QuiesceDelay, 1).stall(50_000)),
    );
    let th = sys.register();
    th.tx(&lock).run(|ctx| {
        let v = ctx.read(&cell)?;
        ctx.write(&cell, v + 1)?;
        Ok(())
    });
    fault::clear();
    let snap = sys.stm.stats.snapshot();
    assert!(
        snap.watchdog_trips >= 1,
        "the stalled drain must trip the watchdog (got {})",
        snap.watchdog_trips
    );
    assert_eq!(cell.load_direct(), 1, "the drain completed after the stall");
    // Back to the silent fast path once injection is off.
    let before = sys.stm.stats.snapshot().watchdog_trips;
    th.tx(&lock).run(|ctx| {
        let v = ctx.read(&cell)?;
        ctx.write(&cell, v + 1)?;
        Ok(())
    });
    assert_eq!(sys.stm.stats.snapshot().watchdog_trips, before);
}

#[test]
fn panic_in_elided_section_poisons_lock_but_not_the_system() {
    let _g = guard();
    for mode in [AlgoMode::StmCondvar, AlgoMode::HtmCondvar] {
        let sys = Arc::new(TmSystem::new(mode));
        let lock = Arc::new(ElidableMutex::new("poison"));
        let cell = Arc::new(TCell::new(7u64));
        let panicker = {
            let sys = Arc::clone(&sys);
            let lock = Arc::clone(&lock);
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                let th = sys.register();
                th.tx(&lock).run(|ctx| -> Result<(), TxError> {
                    // Speculative write, then die mid-section: the undo
                    // log must roll this back while unwinding.
                    ctx.write(&cell, 99)?;
                    panic!("injected panic inside the critical section");
                });
            })
        };
        assert!(panicker.join().is_err(), "the panic must propagate");
        assert!(lock.is_poisoned(), "[{mode:?}] panic must poison the lock");
        assert_eq!(
            cell.load_direct(),
            7,
            "[{mode:?}] the speculative write must be rolled back"
        );
        // The runtime stays fully usable for other threads.
        let th = sys.register();
        th.tx(&lock).run(|ctx| {
            let v = ctx.read(&*cell)?;
            ctx.write(&*cell, v + 1)?;
            Ok(())
        });
        assert_eq!(cell.load_direct(), 8);
        lock.clear_poison();
        assert!(!lock.is_poisoned());
    }
}

#[test]
fn serial_gate_reopens_after_panic() {
    let _g = guard();
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    let lock = Arc::new(ElidableMutex::new("gate"));
    let panicker = {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        std::thread::spawn(move || {
            let th = sys.register();
            // A zero retry budget goes straight to the serial gate; the
            // panic then unwinds while the gate token is live.
            th.tx(&lock).hints(TxHints::new().with_stm_retries(0)).run(
                |_ctx| -> Result<(), TxError> {
                    panic!("injected panic in serial-irrevocable mode");
                },
            );
        })
    };
    assert!(panicker.join().is_err());
    // If the token leaked the gate bit, both of these would deadlock.
    let cell = TCell::new(0u64);
    let th = sys.register();
    th.tx(&lock)
        .hints(TxHints::new().with_stm_retries(0))
        .run(|ctx| {
            let v = ctx.read(&cell)?;
            ctx.write(&cell, v + 1)?;
            Ok(())
        });
    th.tx(&lock).run(|ctx| {
        let v = ctx.read(&cell)?;
        ctx.write(&cell, v + 1)?;
        Ok(())
    });
    assert_eq!(cell.load_direct(), 2);
    assert!(lock.is_poisoned());
}

#[test]
fn condvar_hooks_absorb_signal_delay_and_spurious_wakes() {
    let _g = guard();
    fault::install(
        FaultPlan::new(0xCAFE)
            .rule(FaultRule::new(Hazard::SignalDelay, 1).stall(10_000))
            .rule(FaultRule::new(Hazard::SpuriousWake, 1)),
    );
    // The hooks live on the waiter's private channel, exercised here
    // directly (the full producer/consumer path is torture-harness work).
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    let lock = Arc::new(ElidableMutex::new("cv"));
    let cv = Arc::new(tle_core::TxCondvar::new());
    let ready = Arc::new(TCell::new(false));
    let consumer = {
        let sys = Arc::clone(&sys);
        let lock = Arc::clone(&lock);
        let cv = Arc::clone(&cv);
        let ready = Arc::clone(&ready);
        std::thread::spawn(move || {
            let th = sys.register();
            th.tx(&lock).run(|ctx| {
                if !ctx.read(&*ready)? {
                    return ctx.wait(&cv, None);
                }
                Ok(())
            });
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(20));
    let th = sys.register();
    th.tx(&lock).run(|ctx| {
        ctx.write(&*ready, true)?;
        ctx.signal(&cv)?;
        Ok(())
    });
    consumer
        .join()
        .expect("the delayed signal must still wake the consumer");
    fault::clear();
}
