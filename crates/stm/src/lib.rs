//! # tle-stm — the `ml_wt` software transactional memory
//!
//! A Rust reimplementation of the STM algorithm the paper runs on: GCC
//! libitm's `ml_wt` ("multi-lock, write-through"), which the authors
//! describe as "a privatization-safe version of TinySTM" (§VII). The
//! essential properties reproduced here:
//!
//! - **word-based, eager (encounter-time) locking**: a write acquires the
//!   location's ownership record before updating memory in place, logging
//!   the old word for rollback (write-through / undo-log versioning);
//! - **timestamp validation with extension**: reads are consistent against a
//!   global version clock; reading a location newer than the transaction's
//!   start triggers read-set revalidation and a timestamp extension
//!   (TinySTM's rule), so long transactions survive concurrent commits they
//!   did not observe;
//! - **privatization safety via quiescence** (paper §IV): after committing,
//!   a transaction waits until every concurrent transaction that started
//!   before its commit has committed or aborted *and completed rollback*.
//!   Since 2016 GCC performs this drain after **every** transaction; that is
//!   our [`QuiescePolicy::Always`].
//! - **`TM_NoQuiesce`** (the paper's proposed API, §IV-B): a transaction may
//!   declare that it does not privatize, skipping the drain —
//!   [`QuiescePolicy::Selective`] honours it, and the unsafe-in-general
//!   global disable studied in Figure 5 is [`QuiescePolicy::Never`].
//!
//! The serial-irrevocable fallback and the retry policy live one layer up,
//! in `tle-core`; this crate provides single-attempt transactions
//! ([`StmTx`]) over a shared [`StmGlobal`].

mod norec;
mod quiesce;
mod sets;
mod soft;
mod tx;

pub use norec::NorecTx;
pub use quiesce::{drain, drain_watched, QuiescePolicy, QuiesceTicket, Watchdog};
pub use sets::{
    buf_alloc_stats, buf_reuse_enabled, drain_buf_pool, reset_buf_alloc_stats, set_buf_reuse,
    BufAllocStats, SmallSet, INLINE_READS, INLINE_WRITES,
};
pub use soft::{SoftTx, StmAlgo};
pub use tx::{CommitInfo, StmTx};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use tle_base::stats::TxStats;
use tle_base::{Clock, OrecLayout, OrecTable, SlotRegistry};

/// Shared state of one STM instance: clock, orec table, quiescence epochs.
///
/// One `StmGlobal` corresponds to one "TM domain". Because TLE erases lock
/// identities (paper §IV-A), an entire application shares a single instance
/// no matter how many locks it elides.
pub struct StmGlobal {
    /// The global version clock.
    pub clock: Clock,
    /// The ownership-record table.
    pub orecs: OrecTable,
    /// Per-thread epoch slots (publishing running-transaction start times).
    pub slots: SlotRegistry,
    /// Statistics.
    pub stats: TxStats,
    /// `TM_NoQuiesce` skips whose window overlapped a running transaction
    /// (only counted when auditing is enabled).
    pub noquiesce_overlaps: tle_base::stats::Counter,
    /// NOrec's global sequence lock (even = free, odd = writer committing).
    pub norec_seq: std::sync::atomic::AtomicU64,
    policy: AtomicU8,
    algo: AtomicU8,
    audit_noquiesce: std::sync::atomic::AtomicBool,
    /// Whether read-only `ml_wt` commits may return before the quiescence
    /// machinery (on by default; see [`StmGlobal::set_ro_commit_fast_path`]).
    ro_fast: AtomicBool,
    /// Quiescence-watchdog deadline (ns); a drain waiting longer trips the
    /// watchdog (report + counter, see [`Watchdog`]).
    quiesce_deadline_ns: AtomicU64,
}

/// Default quiescence-watchdog deadline: 1 s. Natural drains are micro- to
/// milliseconds, so a second of waiting is pathological (a descheduled or
/// stalled straggler) and worth a report, while false trips under normal CI
/// load are effectively impossible.
pub const DEFAULT_QUIESCE_DEADLINE_NS: u64 = 1_000_000_000;

impl StmGlobal {
    /// A fresh STM domain with the given quiescence policy (default orec
    /// layout).
    pub fn new(policy: QuiescePolicy) -> Self {
        Self::with_layout(policy, OrecLayout::default())
    }

    /// A fresh STM domain with an explicit orec-table layout (the compact
    /// layout exists for false-sharing A/B measurements; see
    /// [`OrecLayout`]).
    pub fn with_layout(policy: QuiescePolicy, layout: OrecLayout) -> Self {
        StmGlobal {
            clock: Clock::new(),
            orecs: OrecTable::with_layout(OrecTable::DEFAULT_LOG2, layout),
            slots: SlotRegistry::new(),
            stats: TxStats::new(),
            noquiesce_overlaps: tle_base::stats::Counter::new(),
            norec_seq: std::sync::atomic::AtomicU64::new(0),
            policy: AtomicU8::new(policy as u8),
            algo: AtomicU8::new(StmAlgo::MlWt as u8),
            audit_noquiesce: std::sync::atomic::AtomicBool::new(false),
            ro_fast: AtomicBool::new(true),
            quiesce_deadline_ns: AtomicU64::new(DEFAULT_QUIESCE_DEADLINE_NS),
        }
    }

    /// Whether the read-only commit fast path is enabled.
    ///
    /// Ordering audit: `Relaxed` is sufficient — the flag only chooses
    /// between two correct commit paths (the fast path is sound under every
    /// policy, see the commit-site comment in `tx.rs`); observing a flip
    /// late changes nothing but which path one commit takes.
    #[inline]
    pub fn ro_commit_fast_path(&self) -> bool {
        self.ro_fast.load(Ordering::Relaxed)
    }

    /// Enable/disable the read-only commit fast path (on by default; the
    /// benches flip it off to measure the before/after).
    pub fn set_ro_commit_fast_path(&self, on: bool) {
        self.ro_fast.store(on, Ordering::Relaxed);
    }

    /// The quiescence-watchdog deadline in nanoseconds.
    ///
    /// Ordering audit: `Relaxed` is sufficient — the deadline only tunes a
    /// diagnostic threshold; observing a change late shifts when a report
    /// prints, nothing more.
    #[inline]
    pub fn quiesce_deadline_ns(&self) -> u64 {
        self.quiesce_deadline_ns.load(Ordering::Relaxed)
    }

    /// Set the quiescence-watchdog deadline (tests use tiny values to force
    /// trips; 0 trips on any slow-path drain).
    pub fn set_quiesce_deadline_ns(&self, ns: u64) {
        self.quiesce_deadline_ns.store(ns, Ordering::Relaxed);
    }

    /// The active software-TM algorithm.
    ///
    /// Ordering audit: `Acquire`, pairing with the `Release` in
    /// [`StmGlobal::set_algo`]. The two algorithms do not share conflict
    /// metadata (orecs vs `norec_seq`), so a thread beginning a transaction
    /// after an algorithm switch must observe any state the switching thread
    /// prepared (e.g. a reset clock) — `Relaxed` would let `begin_soft` run
    /// the new algorithm against stale setup.
    #[inline]
    pub fn algo(&self) -> StmAlgo {
        StmAlgo::from_u8(self.algo.load(Ordering::Acquire))
    }

    /// Select the software-TM algorithm (between runs, like the policy).
    pub fn set_algo(&self, algo: StmAlgo) {
        self.algo.store(algo as u8, Ordering::Release);
    }

    /// Begin a transaction of the domain's selected algorithm.
    pub fn begin_soft(&self, slot_idx: usize) -> SoftTx<'_> {
        match self.algo() {
            StmAlgo::MlWt => SoftTx::MlWt(StmTx::begin(self, slot_idx)),
            StmAlgo::Norec => SoftTx::Norec(NorecTx::begin(self, slot_idx)),
        }
    }

    /// Enable/disable the `TM_NoQuiesce` audit (paper §IV-C).
    ///
    /// The paper expects misuses of `TM_NoQuiesce` to be "easy to identify
    /// and fix using transactional race detectors" (T-Rex). This is a
    /// lightweight, sound-but-incomplete stand-in: when enabled, every
    /// drain *skipped* by `TM_NoQuiesce` checks whether a concurrent older
    /// transaction was still running — the precondition for a privatization
    /// race. Overlaps are counted in [`StmGlobal::noquiesce_overlaps`]; a
    /// zero count proves the annotations were harmless *in this run*, a
    /// non-zero count flags transactions whose `TM_NoQuiesce` claim is
    /// load-bearing and deserves review. Costs one slot scan per skipped
    /// drain (i.e. re-introduces part of the cost it audits), so it is a
    /// debug tool, off by default.
    /// Ordering audit: `Relaxed` is sufficient. The flag only gates a
    /// *diagnostic counter* ([`StmGlobal::noquiesce_overlaps`]); no memory
    /// accessed by the audit is published by the thread flipping the flag,
    /// and observing the flip late merely delays when counting starts.
    pub fn set_audit_noquiesce(&self, on: bool) {
        self.audit_noquiesce
            .store(on, std::sync::atomic::Ordering::Relaxed);
    }

    pub(crate) fn audit_noquiesce_enabled(&self) -> bool {
        self.audit_noquiesce
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Current quiescence policy.
    ///
    /// Ordering audit: `Relaxed` is sufficient. The policy only selects
    /// whether a *post-commit* drain runs; it guards no data, and every
    /// committer re-reads it after its own commit point. A committer that
    /// observes a policy flip late at worst performs one extra (safe) or one
    /// fewer (caller-sanctioned: flipping mid-run means the caller accepts
    /// the old policy for in-flight commits) drain.
    #[inline]
    pub fn policy(&self) -> QuiescePolicy {
        QuiescePolicy::from_u8(self.policy.load(Ordering::Relaxed))
    }

    /// Change the quiescence policy. Benchmarks flip this between trials;
    /// flipping while transactions are in flight is allowed (it only governs
    /// post-commit drains).
    pub fn set_policy(&self, p: QuiescePolicy) {
        self.policy.store(p as u8, Ordering::Relaxed);
    }

    /// Begin a transaction attempt on the thread occupying `slot_idx`
    /// (claimed via `self.slots.register_raw()`).
    pub fn begin(&self, slot_idx: usize) -> StmTx<'_> {
        StmTx::begin(self, slot_idx)
    }

    /// Run one non-blocking sweep of a pending post-commit drain
    /// ([`StmTx::commit_publish`]). `Some(info)` once the drain completes —
    /// quiescence statistics are recorded at that point — and `None` while
    /// an older transaction is still inside the window (the async runner
    /// yields its worker and polls again).
    pub fn quiesce_pass(&self, t: &mut QuiesceTicket) -> Option<CommitInfo> {
        let dog = Watchdog {
            deadline_ns: self.quiesce_deadline_ns(),
            stats: &self.stats,
            shard: t.slot_idx,
            tx_deadline: t.tx_deadline,
        };
        let wait_ns = t.pass(&self.slots, &dog)?;
        self.stats.quiesces.inc(t.slot_idx);
        self.stats.quiesce_wait_ns.add(t.slot_idx, wait_ns);
        self.stats.quiesce_hist.record(wait_ns);
        Some(CommitInfo {
            end_time: t.end_time,
            quiesced: true,
            quiesce_wait_ns: wait_ns,
        })
    }
}

impl Default for StmGlobal {
    fn default() -> Self {
        Self::new(QuiescePolicy::Always)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tle_base::TCell;

    #[test]
    fn single_thread_read_write_commit() {
        let g = StmGlobal::default();
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(1u64);
        let b = TCell::new(2u64);

        let mut tx = g.begin(slot);
        let va = tx.read(&a).unwrap();
        let vb = tx.read(&b).unwrap();
        tx.write(&a, va + vb).unwrap();
        tx.write(&b, 0u64).unwrap();
        tx.commit().unwrap();

        assert_eq!(a.load_direct(), 3);
        assert_eq!(b.load_direct(), 0);
        assert_eq!(g.stats.commits.get(), 1);
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn abort_rolls_back_in_place_writes() {
        let g = StmGlobal::default();
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(10u64);

        let mut tx = g.begin(slot);
        tx.write(&a, 99u64).unwrap();
        tx.write(&a, 100u64).unwrap();
        // Write-through: the new value is visible in memory while locked.
        assert_eq!(a.load_direct(), 100);
        tx.abort(tle_base::AbortCause::Explicit);
        assert_eq!(
            a.load_direct(),
            10,
            "undo log must restore the oldest value"
        );
        assert_eq!(g.stats.aborts.get(), 1);
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn read_only_transaction_commits_without_clock_advance() {
        let g = StmGlobal::default();
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(5u64);
        let before = g.clock.now();
        let mut tx = g.begin(slot);
        assert_eq!(tx.read(&a).unwrap(), 5);
        tx.commit().unwrap();
        assert_eq!(
            g.clock.now(),
            before,
            "read-only commits must not bump the clock"
        );
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn own_writes_are_read_back() {
        let g = StmGlobal::default();
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(1u64);
        let mut tx = g.begin(slot);
        tx.write(&a, 42u64).unwrap();
        assert_eq!(tx.read(&a).unwrap(), 42, "read-own-write");
        tx.commit().unwrap();
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn write_write_conflict_is_detected() {
        let g = StmGlobal::new(QuiescePolicy::Never);
        let s1 = g.slots.register_raw().unwrap();
        let s2 = g.slots.register_raw().unwrap();
        let a = TCell::new(0u64);

        let mut t1 = g.begin(s1);
        t1.write(&a, 1u64).unwrap();

        let mut t2 = g.begin(s2);
        let r = t2.write(&a, 2u64);
        assert!(r.is_err(), "second writer must fail to acquire the orec");
        t2.abort(r.unwrap_err());

        t1.commit().unwrap();
        assert_eq!(a.load_direct(), 1);
        g.slots.unregister_raw(s1);
        g.slots.unregister_raw(s2);
    }

    #[test]
    fn doomed_reader_aborts_on_next_read() {
        let g = StmGlobal::new(QuiescePolicy::Never);
        let s1 = g.slots.register_raw().unwrap();
        let s2 = g.slots.register_raw().unwrap();
        let a = TCell::new(0u64);

        // T1 reads a.
        let mut t1 = g.begin(s1);
        assert_eq!(t1.read(&a).unwrap(), 0);

        // T2 writes a and commits.
        let mut t2 = g.begin(s2);
        t2.write(&a, 7u64).unwrap();
        t2.commit().unwrap();

        // T1 re-reads a: version moved past t1.start, extension validates
        // the read set, finds `a` changed, and the transaction must abort.
        let r = t1.read(&a);
        assert!(r.is_err(), "stale reader must fail validation");
        t1.abort(r.unwrap_err());
        g.slots.unregister_raw(s1);
        g.slots.unregister_raw(s2);
    }

    #[test]
    fn extension_allows_reading_fresh_unrelated_data() {
        let g = StmGlobal::new(QuiescePolicy::Never);
        let s1 = g.slots.register_raw().unwrap();
        let s2 = g.slots.register_raw().unwrap();
        let a = TCell::new(0u64);
        let b = TCell::new(0u64);

        let mut t1 = g.begin(s1);
        // No reads yet; T2 commits a write to b.
        let mut t2 = g.begin(s2);
        t2.write(&b, 9u64).unwrap();
        t2.commit().unwrap();

        // T1 reads b (version > start): extension succeeds because T1's read
        // set is empty, and the read returns the committed value.
        assert_eq!(t1.read(&b).unwrap(), 9);
        assert_eq!(t1.read(&a).unwrap(), 0);
        t1.commit().unwrap();
        g.slots.unregister_raw(s1);
        g.slots.unregister_raw(s2);
    }

    #[test]
    fn policy_is_runtime_switchable() {
        let g = StmGlobal::default();
        assert_eq!(g.policy(), QuiescePolicy::Always);
        g.set_policy(QuiescePolicy::Never);
        assert_eq!(g.policy(), QuiescePolicy::Never);
        g.set_policy(QuiescePolicy::Selective);
        assert_eq!(g.policy(), QuiescePolicy::Selective);
    }

    #[test]
    fn noquiesce_audit_counts_overlapping_skips() {
        let g = StmGlobal::new(QuiescePolicy::Selective);
        g.set_audit_noquiesce(true);
        let s1 = g.slots.register_raw().unwrap();
        let s2 = g.slots.register_raw().unwrap();
        let a = TCell::new(0u64);
        let b = TCell::new(0u64);

        // No other transaction in flight: skip is provably harmless.
        let mut tx = g.begin(s1);
        tx.write(&a, 1u64).unwrap();
        tx.no_quiesce();
        tx.commit().unwrap();
        assert_eq!(g.noquiesce_overlaps.get(), 0);

        // An older transaction is still running: the skip overlaps.
        let mut old = g.begin(s2);
        old.read(&b).unwrap();
        let mut tx = g.begin(s1);
        tx.write(&a, 2u64).unwrap();
        tx.no_quiesce();
        tx.commit().unwrap();
        assert_eq!(g.noquiesce_overlaps.get(), 1);
        old.abort(tle_base::AbortCause::Explicit);
        g.slots.unregister_raw(s1);
        g.slots.unregister_raw(s2);
    }

    #[test]
    fn noquiesce_audit_off_by_default() {
        let g = StmGlobal::new(QuiescePolicy::Selective);
        let s1 = g.slots.register_raw().unwrap();
        let s2 = g.slots.register_raw().unwrap();
        let a = TCell::new(0u64);
        g.slots.publish_raw(s2, 0); // fake an in-flight transaction
        let mut tx = g.begin(s1);
        tx.write(&a, 1u64).unwrap();
        tx.no_quiesce();
        tx.commit().unwrap();
        assert_eq!(g.noquiesce_overlaps.get(), 0, "audit must be opt-in");
        g.slots.unregister_raw(s1);
        g.slots.unregister_raw(s2);
    }
}
