//! NOrec: the no-ownership-record STM (Dalessandro, Spear, Scott — PPoPP
//! 2010; the third author is an author of the paper we reproduce).
//!
//! Where `ml_wt` detects conflicts through a striped orec table, NOrec uses
//! **one global sequence lock** and **value-based validation**:
//!
//! - a transaction snapshots the (even) sequence number at begin;
//! - reads log `(location, value)` pairs; whenever the global sequence has
//!   moved, the transaction re-reads every logged location and aborts only
//!   if a *value* actually changed (so write-write-same and silent updates
//!   do not abort readers);
//! - writes buffer in a redo log (lazy versioning);
//! - commit acquires the sequence lock (odd), publishes the redo log, and
//!   releases it (next even value) — writer commits are fully serialized.
//!
//! NOrec is **privatization-safe by construction**: writes only happen
//! under the global commit lock and doomed transactions never write to
//! shared memory, so the paper's quiescence machinery (and `TM_NoQuiesce`)
//! has nothing to do here. That contrast is exactly why it makes a good
//! ablation against `ml_wt` (`ablate_stm_algo` bench): the drain the paper
//! optimizes is an artifact of *in-place* STMs.

use crate::sets::{self, BufLease};
use crate::tx::CommitInfo;
use crate::StmGlobal;
use std::sync::atomic::{AtomicU64, Ordering};
use tle_base::fault::{self, Hazard};
use tle_base::history;
use tle_base::sched::{self, YieldPoint};
use tle_base::trace::{self, TraceKind, TxMode};
use tle_base::{AbortCause, TCell, TxVal};

/// A single NOrec transaction attempt.
pub struct NorecTx<'g> {
    g: &'g StmGlobal,
    slot_idx: usize,
    /// Even sequence value this transaction is consistent with.
    snapshot: u64,
    /// Pooled value log (`nreads`: cell, observed value) and redo log
    /// (`nwrites`: cell, address, value; linear-scanned — small sets). The
    /// same per-thread block `ml_wt` uses, leased for this attempt.
    bufs: BufLease,
    finished: bool,
}

impl<'g> NorecTx<'g> {
    pub(crate) fn begin(g: &'g StmGlobal, slot_idx: usize) -> Self {
        sched::yield_point(YieldPoint::SeqLock);
        let snapshot = wait_even(&g.norec_seq);
        // Publish for the (ml_wt-oriented) drain scans; harmless here.
        g.slots.publish_raw(slot_idx, snapshot);
        trace::emit(TraceKind::Begin, TxMode::Norec, None, snapshot);
        history::begin(TxMode::Norec);
        NorecTx {
            g,
            slot_idx,
            snapshot,
            bufs: sets::lease(slot_idx),
            finished: false,
        }
    }

    /// The slot (thread) identity running this transaction.
    #[inline]
    pub fn slot(&self) -> usize {
        self.slot_idx
    }

    /// Whether this attempt has buffered any writes.
    #[inline]
    pub fn is_writer(&self) -> bool {
        !self.bufs.nwrites.is_empty()
    }

    /// Transactionally read a cell.
    pub fn read<T: TxVal>(&mut self, cell: &TCell<T>) -> Result<T, AbortCause> {
        sched::yield_point(YieldPoint::SeqLock);
        let addr = cell.addr();
        if let Some(&(_, _, w)) = self.bufs.nwrites.iter().find(|&&(_, a, _)| a == addr) {
            history::read(addr, w);
            return Ok(T::from_word(w));
        }
        loop {
            let v = cell.word().load(Ordering::Acquire);
            if self.g.norec_seq.load(Ordering::Acquire) == self.snapshot {
                self.bufs.nreads.push((cell.word() as *const AtomicU64, v));
                history::read(addr, v);
                return Ok(T::from_word(v));
            }
            // The world moved: value-validate and adopt the newer snapshot,
            // then retry the read against it.
            self.revalidate()?;
        }
    }

    /// Transactionally write a cell (buffered until commit).
    pub fn write<T: TxVal>(&mut self, cell: &TCell<T>, v: T) -> Result<(), AbortCause> {
        let addr = cell.addr();
        let word = v.to_word();
        if let Some(entry) = self.bufs.nwrites.iter_mut().find(|e| e.1 == addr) {
            entry.2 = word;
        } else {
            self.bufs
                .nwrites
                .push((cell.word() as *const AtomicU64, addr, word));
        }
        history::write(addr, word);
        Ok(())
    }

    /// Read-modify-write convenience.
    pub fn update<T: TxVal>(
        &mut self,
        cell: &TCell<T>,
        f: impl FnOnce(T) -> T,
    ) -> Result<T, AbortCause> {
        let old = self.read(cell)?;
        let new = f(old);
        self.write(cell, new)?;
        Ok(new)
    }

    /// Value-based validation: every logged read must still observe its
    /// logged value at a stable (even, unchanged) sequence point.
    fn revalidate(&mut self) -> Result<(), AbortCause> {
        sched::yield_point(YieldPoint::Validate);
        // Fault oracle: widen the value-validation window so a writer can
        // commit mid-scan; the trailing sequence re-check must then loop.
        let stalled = fault::maybe_stall(Hazard::ValidationDelay);
        if stalled > 0 {
            trace::emit(
                TraceKind::FaultInject,
                TxMode::Norec,
                None,
                Hazard::ValidationDelay.index() as u64,
            );
        }
        loop {
            let s = wait_even(&self.g.norec_seq);
            let consistent = self
                .bufs
                .nreads
                .iter()
                // SAFETY: cells outlive the transaction (documented
                // invariant shared with `StmTx`).
                .all(|&(c, v)| unsafe { (*c).load(Ordering::Acquire) } == v);
            if !consistent {
                trace::emit(
                    TraceKind::Conflict,
                    TxMode::Norec,
                    Some(AbortCause::ValidationFailed),
                    s,
                );
                return Err(AbortCause::ValidationFailed);
            }
            if self.g.norec_seq.load(Ordering::Acquire) == s {
                self.snapshot = s;
                self.g.slots.publish_raw(self.slot_idx, s);
                trace::emit(TraceKind::Extend, TxMode::Norec, None, s);
                return Ok(());
            }
        }
    }

    /// Attempt to commit.
    pub fn commit(mut self) -> Result<CommitInfo, AbortCause> {
        debug_assert!(!self.finished);
        let shard = self.slot_idx;
        if self.bufs.nwrites.is_empty() {
            self.finished = true;
            history::commit();
            self.g.slots.publish_raw(self.slot_idx, tle_base::INACTIVE);
            self.g.stats.commits.inc(shard);
            trace::emit(TraceKind::Commit, TxMode::Norec, None, self.snapshot);
            return Ok(CommitInfo {
                end_time: self.snapshot,
                quiesced: false,
                quiesce_wait_ns: 0,
            });
        }
        // Acquire the sequence lock at our snapshot; on contention,
        // value-validate against the newer state and retry.
        sched::yield_point(YieldPoint::SeqLock);
        loop {
            match self.g.norec_seq.compare_exchange(
                self.snapshot,
                self.snapshot + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(_) => {
                    if self.revalidate().is_err() {
                        // Commit-time abort: the race for the sequence lock
                        // was lost AND the winner changed a value we read.
                        let cause = AbortCause::CommitValidation;
                        self.finished = true;
                        self.g.stats.count_abort(shard, cause);
                        self.g.slots.publish_raw(self.slot_idx, tle_base::INACTIVE);
                        trace::emit(TraceKind::Abort, TxMode::Norec, Some(cause), self.snapshot);
                        history::abort();
                        return Err(cause);
                    }
                }
            }
        }
        // Commit event recorded while the sequence lock is still held (odd):
        // no reader records a value we publish below until the lock goes
        // even, so the log's `Commit` order serializes NOrec writers.
        history::commit();
        sched::yield_point(YieldPoint::MemStore);
        for &(c, _, v) in self.bufs.nwrites.iter() {
            // SAFETY: cells outlive the transaction.
            unsafe { (*c).store(v, Ordering::Release) };
        }
        let end = self.snapshot + 2;
        self.g.norec_seq.store(end, Ordering::Release);
        self.finished = true;
        self.g.slots.publish_raw(self.slot_idx, tle_base::INACTIVE);
        self.g.stats.commits.inc(shard);
        trace::emit(TraceKind::Commit, TxMode::Norec, None, end);
        Ok(CommitInfo {
            end_time: end,
            quiesced: false,
            quiesce_wait_ns: 0,
        })
    }

    /// Abort this attempt (nothing to roll back — lazy versioning).
    pub fn abort(mut self, cause: AbortCause) {
        self.finished = true;
        self.g.stats.count_abort(self.slot_idx, cause);
        self.g.slots.publish_raw(self.slot_idx, tle_base::INACTIVE);
        trace::emit(TraceKind::Abort, TxMode::Norec, Some(cause), self.snapshot);
        history::abort();
    }
}

impl Drop for NorecTx<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.g
                .stats
                .count_abort(self.slot_idx, AbortCause::Explicit);
            self.g.slots.publish_raw(self.slot_idx, tle_base::INACTIVE);
            trace::emit(
                TraceKind::Abort,
                TxMode::Norec,
                Some(AbortCause::Explicit),
                self.snapshot,
            );
            history::abort();
        }
    }
}

/// Spin (then yield) until the sequence lock is even; returns that value.
fn wait_even(seq: &AtomicU64) -> u64 {
    let mut spins = 0u32;
    loop {
        let s = seq.load(Ordering::Acquire);
        if s & 1 == 0 {
            return s;
        }
        spins += 1;
        sched::spin_hint(YieldPoint::SeqLock);
        if spins < 32 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QuiescePolicy, StmAlgo, StmGlobal};
    use std::sync::Arc;

    fn norec_global() -> StmGlobal {
        let g = StmGlobal::new(QuiescePolicy::Always);
        g.set_algo(StmAlgo::Norec);
        g
    }

    #[test]
    fn read_write_commit() {
        let g = norec_global();
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(1u64);
        let mut tx = NorecTx::begin(&g, slot);
        let v = tx.read(&a).unwrap();
        tx.write(&a, v + 10).unwrap();
        // Lazy versioning: nothing visible before commit.
        assert_eq!(a.load_direct(), 1);
        tx.commit().unwrap();
        assert_eq!(a.load_direct(), 11);
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn read_own_write() {
        let g = norec_global();
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(1u64);
        let mut tx = NorecTx::begin(&g, slot);
        tx.write(&a, 7u64).unwrap();
        assert_eq!(tx.read(&a).unwrap(), 7);
        tx.commit().unwrap();
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn abort_discards_buffered_writes() {
        let g = norec_global();
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(3u64);
        let mut tx = NorecTx::begin(&g, slot);
        tx.write(&a, 9u64).unwrap();
        tx.abort(AbortCause::Explicit);
        assert_eq!(a.load_direct(), 3);
        assert_eq!(g.stats.aborts.get(), 1);
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn stale_reader_fails_value_validation() {
        let g = norec_global();
        let s1 = g.slots.register_raw().unwrap();
        let s2 = g.slots.register_raw().unwrap();
        let a = TCell::new(0u64);
        let b = TCell::new(0u64);

        let mut t1 = NorecTx::begin(&g, s1);
        assert_eq!(t1.read(&a).unwrap(), 0);

        let mut t2 = NorecTx::begin(&g, s2);
        t2.write(&a, 5u64).unwrap();
        t2.commit().unwrap();

        // t1's next read sees the sequence moved; a's value changed -> abort.
        let r = t1.read(&b);
        assert_eq!(r, Err(AbortCause::ValidationFailed));
        t1.abort(AbortCause::ValidationFailed);
        g.slots.unregister_raw(s1);
        g.slots.unregister_raw(s2);
    }

    #[test]
    fn value_validation_tolerates_silent_restores() {
        // NOrec's signature behaviour: a concurrent commit that does not
        // change the values we read must NOT abort us (ml_wt would).
        let g = norec_global();
        let s1 = g.slots.register_raw().unwrap();
        let s2 = g.slots.register_raw().unwrap();
        let a = TCell::new(0u64);
        let b = TCell::new(0u64);

        let mut t1 = NorecTx::begin(&g, s1);
        assert_eq!(t1.read(&a).unwrap(), 0);

        // t2 writes *b* (a is untouched).
        let mut t2 = NorecTx::begin(&g, s2);
        t2.write(&b, 9u64).unwrap();
        t2.commit().unwrap();

        // t1 continues fine: value of `a` is unchanged.
        assert_eq!(t1.read(&b).unwrap(), 9);
        let mut t1 = t1;
        t1.write(&a, 1u64).unwrap();
        t1.commit().unwrap();
        assert_eq!(a.load_direct(), 1);
        g.slots.unregister_raw(s1);
        g.slots.unregister_raw(s2);
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let g = Arc::new(norec_global());
        let cell = Arc::new(TCell::new(0u64));
        const THREADS: usize = 6;
        const OPS: u64 = 3_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let g = Arc::clone(&g);
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let slot = g.slots.register_raw().unwrap();
                    for _ in 0..OPS {
                        loop {
                            let mut tx = NorecTx::begin(&g, slot);
                            match tx.update(&*cell, |v| v + 1) {
                                Ok(_) => {
                                    if tx.commit().is_ok() {
                                        break;
                                    }
                                }
                                Err(e) => tx.abort(e),
                            }
                        }
                    }
                    g.slots.unregister_raw(slot);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.load_direct(), THREADS as u64 * OPS);
    }

    #[test]
    fn sequence_stays_even_after_commits() {
        let g = norec_global();
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(0u64);
        for i in 0..10u64 {
            let mut tx = NorecTx::begin(&g, slot);
            tx.write(&a, i).unwrap();
            tx.commit().unwrap();
        }
        assert_eq!(g.norec_seq.load(Ordering::Acquire) % 2, 0);
        assert_eq!(g.norec_seq.load(Ordering::Acquire), 20);
        g.slots.unregister_raw(slot);
    }
}
