//! The `ml_wt` transaction descriptor: read set, undo log, eager orec
//! acquisition, timestamp extension, commit-time validation, and the
//! post-commit quiescence drain.

use crate::quiesce::{drain_watched, QuiescePolicy, QuiesceTicket, Watchdog};
use crate::sets::{self, BufLease};
use crate::StmGlobal;
use std::sync::atomic::{AtomicU64, Ordering};
use tle_base::fault::{self, Hazard};
use tle_base::history;
use tle_base::mutant::{self, Mutant};
use tle_base::orec::OrecValue;
use tle_base::sched::{self, YieldPoint};
use tle_base::trace::{self, TraceKind, TxMode};
use tle_base::{AbortCause, TCell, TxVal};

/// How long to spin on a locked orec before reporting a conflict. Short, as
/// orec hold times are bounded by the owner's critical-path work.
const LOCKED_SPIN: u32 = 64;

/// Outcome data of a successful commit, for statistics and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitInfo {
    /// Commit timestamp (0 for read-only transactions, which do not advance
    /// the clock).
    pub end_time: u64,
    /// Whether the post-commit quiescence drain ran.
    pub quiesced: bool,
    /// Nanoseconds spent in the drain.
    pub quiesce_wait_ns: u64,
}

/// A single software-transaction attempt.
///
/// Created by [`StmGlobal::begin`]; ends in exactly one of
/// [`StmTx::commit`] or [`StmTx::abort`]. Dropping a live transaction rolls
/// it back (so panics inside transactional closures do not leak orec locks).
///
/// # Pointer validity
///
/// The undo log stores raw pointers to the cells written. Cells passed to
/// [`StmTx::read`]/[`StmTx::write`] must remain alive until the transaction
/// ends; the `tle-core` runner enforces this by construction (cells live in
/// application structures that outlive the atomic block).
pub struct StmTx<'g> {
    g: &'g StmGlobal,
    slot_idx: usize,
    start: u64,
    /// Pooled read set / undo log / lock set (see [`crate::sets`]): leased
    /// at begin, returned cleared-but-capacity-intact at drop, so retries
    /// stop paying allocator round-trips.
    bufs: BufLease,
    no_quiesce: bool,
    must_quiesce: bool,
    finished: bool,
    deadline: Option<std::time::Instant>,
}

impl<'g> StmTx<'g> {
    pub(crate) fn begin(g: &'g StmGlobal, slot_idx: usize) -> Self {
        sched::yield_point(YieldPoint::ClockRead);
        let start = g.clock.now();
        g.slots.publish_raw(slot_idx, start);
        trace::emit(TraceKind::Begin, TxMode::Stm, None, start);
        history::begin(TxMode::Stm);
        StmTx {
            g,
            slot_idx,
            start,
            bufs: sets::lease(slot_idx),
            no_quiesce: false,
            must_quiesce: false,
            finished: false,
            deadline: None,
        }
    }

    /// The slot (thread) identity running this transaction.
    #[inline]
    pub fn slot(&self) -> usize {
        self.slot_idx
    }

    /// The transaction's current start timestamp (grows on extension).
    #[inline]
    pub fn start_time(&self) -> u64 {
        self.start
    }

    /// Number of recorded reads (diagnostics).
    #[inline]
    pub fn read_set_len(&self) -> usize {
        self.bufs.reads.len()
    }

    /// Whether this attempt has written anything yet.
    #[inline]
    pub fn is_writer(&self) -> bool {
        !self.bufs.locks.is_empty()
    }

    /// Heap capacity currently retained by the read set's spill tier
    /// (test introspection for the buffer-reuse pin).
    #[doc(hidden)]
    pub fn read_spill_capacity(&self) -> usize {
        self.bufs.reads.spill_capacity()
    }

    /// The paper's `TM_NoQuiesce`: assert that this transaction does not
    /// privatize data, so it need not drain after committing. Only honoured
    /// under [`QuiescePolicy::Selective`], and overridden if the transaction
    /// later frees memory (see [`StmTx::will_free_memory`]).
    #[inline]
    pub fn no_quiesce(&mut self) {
        self.no_quiesce = true;
    }

    /// Declare that this transaction logically frees memory that will return
    /// to an allocator. GCC's TM-aware allocator requires such transactions
    /// to quiesce regardless of `TM_NoQuiesce` (paper §IV-B); this sets that
    /// override.
    #[inline]
    pub fn will_free_memory(&mut self) {
        self.must_quiesce = true;
    }

    /// Attach the transaction's retry-time budget so the post-commit
    /// quiescence drain can observe an overrun (see
    /// [`Watchdog::tx_deadline`]).
    #[inline]
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// Transactionally read a cell.
    #[inline]
    pub fn read<T: TxVal>(&mut self, cell: &TCell<T>) -> Result<T, AbortCause> {
        self.read_word(cell.word(), cell.addr()).map(T::from_word)
    }

    /// Transactionally write a cell.
    #[inline]
    pub fn write<T: TxVal>(&mut self, cell: &TCell<T>, v: T) -> Result<(), AbortCause> {
        self.write_word(cell.word(), cell.addr(), v.to_word())
    }

    /// Read-modify-write convenience.
    #[inline]
    pub fn update<T: TxVal>(
        &mut self,
        cell: &TCell<T>,
        f: impl FnOnce(T) -> T,
    ) -> Result<T, AbortCause> {
        let old = self.read(cell)?;
        let new = f(old);
        self.write(cell, new)?;
        Ok(new)
    }

    fn read_word(&mut self, w: &AtomicU64, addr: usize) -> Result<u64, AbortCause> {
        sched::yield_point(YieldPoint::OrecLoad);
        let oi = self.g.orecs.index_of(addr);
        let mut spins = 0u32;
        loop {
            let v1 = self.g.orecs.load(oi);
            match OrecValue::decode(v1) {
                OrecValue::Locked(owner) if owner == self.slot_idx => {
                    // Read-own-write: value is in place.
                    let val = w.load(Ordering::Acquire);
                    history::read(addr, val);
                    return Ok(val);
                }
                OrecValue::Locked(_) => {
                    if spins < LOCKED_SPIN {
                        spins += 1;
                        std::hint::spin_loop();
                        sched::spin_hint(YieldPoint::OrecLoad);
                        continue;
                    }
                    trace::emit(
                        TraceKind::Conflict,
                        TxMode::Stm,
                        Some(AbortCause::ReadConflict),
                        oi as u64,
                    );
                    return Err(AbortCause::ReadConflict);
                }
                OrecValue::Unlocked(ver) => {
                    if ver > self.start {
                        // TinySTM extension rule: revalidate + move start
                        // forward *before* consuming the value.
                        self.extend()?;
                        continue;
                    }
                    let val = w.load(Ordering::Acquire);
                    let v2 = self.g.orecs.load(oi);
                    if v1 != v2 {
                        // Concurrent commit between our samples; retry.
                        continue;
                    }
                    self.bufs.reads.push((oi as u32, v1));
                    trace::emit(TraceKind::Read, TxMode::Stm, None, oi as u64);
                    history::read(addr, val);
                    return Ok(val);
                }
            }
        }
    }

    fn write_word(&mut self, w: &AtomicU64, addr: usize, val: u64) -> Result<(), AbortCause> {
        sched::yield_point(YieldPoint::OrecAcquire);
        let oi = self.g.orecs.index_of(addr);
        let mut spins = 0u32;
        loop {
            let cur = self.g.orecs.load(oi);
            match OrecValue::decode(cur) {
                OrecValue::Locked(owner) if owner == self.slot_idx => {
                    self.bufs
                        .undo
                        // tle-lint: allow(R8, "undo capture under the owned orec: the CAS that locked the orec ordered this word; no concurrent writer exists")
                        .push((w as *const AtomicU64, w.load(Ordering::Relaxed)));
                    w.store(val, Ordering::Release);
                    history::write(addr, val);
                    return Ok(());
                }
                OrecValue::Locked(_) => {
                    if spins < LOCKED_SPIN {
                        spins += 1;
                        std::hint::spin_loop();
                        sched::spin_hint(YieldPoint::OrecAcquire);
                        continue;
                    }
                    trace::emit(
                        TraceKind::Conflict,
                        TxMode::Stm,
                        Some(AbortCause::WriteConflict),
                        oi as u64,
                    );
                    return Err(AbortCause::WriteConflict);
                }
                OrecValue::Unlocked(ver) => {
                    if ver > self.start {
                        self.extend()?;
                        continue;
                    }
                    if self.g.orecs.try_lock(oi, cur, self.slot_idx) {
                        self.bufs.locks.push((oi as u32, cur));
                        // In-flight window: the orec is held but the new value
                        // is not yet stored; the explorer probes it here.
                        sched::yield_point(YieldPoint::MemStore);
                        // Fault oracle: stall while *holding* the orec lock,
                        // simulating lock-holder preemption. Concurrent
                        // readers/writers of this orec must spin out and
                        // report a conflict, never corrupt state.
                        let stalled = fault::maybe_stall(Hazard::OrecStall);
                        if stalled > 0 {
                            trace::emit(
                                TraceKind::FaultInject,
                                TxMode::Stm,
                                None,
                                Hazard::OrecStall.index() as u64,
                            );
                        }
                        self.bufs
                            .undo
                            // tle-lint: allow(R8, "undo capture under the orec lock just acquired by try_lock; the acquiring CAS provides the ordering")
                            .push((w as *const AtomicU64, w.load(Ordering::Relaxed)));
                        w.store(val, Ordering::Release);
                        trace::emit(TraceKind::Write, TxMode::Stm, None, oi as u64);
                        history::write(addr, val);
                        return Ok(());
                    }
                    // CAS raced with another transaction; re-examine.
                }
            }
        }
    }

    /// Timestamp extension: validate every recorded read, then advance the
    /// start time to "now". Also republishes the epoch slot, which lets
    /// concurrent quiescence drains stop waiting on us.
    fn extend(&mut self) -> Result<(), AbortCause> {
        sched::yield_point(YieldPoint::ClockRead);
        let now = self.g.clock.now();
        if let Err(cause) = self.validate() {
            trace::emit(TraceKind::Conflict, TxMode::Stm, Some(cause), now);
            return Err(cause);
        }
        self.start = now;
        self.g.slots.publish_raw(self.slot_idx, now);
        trace::emit(TraceKind::Extend, TxMode::Stm, None, now);
        Ok(())
    }

    /// Check that every read still observes the orec word it recorded (or
    /// that we subsequently locked the orec ourselves *at* that word).
    fn validate(&self) -> Result<(), AbortCause> {
        sched::yield_point(YieldPoint::Validate);
        // Fault oracle: widen the validation window so concurrent commits
        // can race the revalidation (extension and commit-time paths both
        // funnel through here).
        let stalled = fault::maybe_stall(Hazard::ValidationDelay);
        if stalled > 0 {
            trace::emit(
                TraceKind::FaultInject,
                TxMode::Stm,
                None,
                Hazard::ValidationDelay.index() as u64,
            );
        }
        for &(oi, seen) in self.bufs.reads.iter() {
            let cur = self.g.orecs.load(oi as usize);
            if cur == seen {
                continue;
            }
            match OrecValue::decode(cur) {
                OrecValue::Locked(owner) if owner == self.slot_idx => {
                    // We locked this orec after reading it; the read is
                    // valid iff nothing committed in between, i.e. the
                    // pre-lock word equals what the read saw.
                    let prev = self
                        .bufs
                        .locks
                        .iter()
                        .find(|&&(li, _)| li == oi)
                        .map(|&(_, p)| p);
                    if prev != Some(seen) {
                        return Err(AbortCause::ValidationFailed);
                    }
                }
                _ => return Err(AbortCause::ValidationFailed),
            }
        }
        Ok(())
    }

    /// Attempt to commit. On success returns drain information; on failure
    /// the transaction has already rolled back and the caller retries.
    pub fn commit(mut self) -> Result<CommitInfo, AbortCause> {
        debug_assert!(!self.finished);
        let shard = self.slot_idx;
        if self.bufs.locks.is_empty() {
            // Read-only commit: reads were validated incrementally, no
            // clock advance needed (GCC/TinySTM do the same).
            self.finished = true;
            history::commit();
            self.g.slots.publish_raw(self.slot_idx, tle_base::INACTIVE);
            if self.g.ro_commit_fast_path()
                && !self.must_quiesce
                && !(self.no_quiesce && self.g.audit_noquiesce_enabled())
            {
                // Fast path: return before the quiescence machinery. Sound
                // because only a *writer* commit can transfer data into
                // private use: a privatizing reader observes the transfer
                // only after the transferring writer committed, and that
                // writer's own post-commit drain (policy permitting)
                // already waited out every transaction older than the
                // transfer — a read-only commit has nobody to wait for.
                // Exceptions stay on the slow path: `will_free_memory`
                // (allocator contract, §IV-B) and — when the §IV-C
                // no-quiesce audit is on — `TM_NoQuiesce` transactions, so
                // the audit's overlap scan stays complete.
                self.g.stats.quiesce_skipped.inc(shard);
                self.g.stats.commits.inc(shard);
                trace::emit(TraceKind::Commit, TxMode::Stm, None, 0);
                return Ok(CommitInfo {
                    end_time: 0,
                    quiesced: false,
                    quiesce_wait_ns: 0,
                });
            }
            let info = self.maybe_quiesce(self.g.clock.now());
            self.g.stats.commits.inc(shard);
            trace::emit(TraceKind::Commit, TxMode::Stm, None, info.end_time);
            return Ok(info);
        }

        sched::yield_point(YieldPoint::ClockAdvance);
        let end = self.g.clock.advance();
        if end > self.start + 1 && !mutant::armed(Mutant::SkipCommitValidation) {
            // Someone committed since our (possibly extended) start; the
            // read set must still hold. A failure here is a *commit-time*
            // validation abort, distinct from mid-transaction validation.
            if self.validate().is_err() {
                let cause = AbortCause::CommitValidation;
                self.rollback();
                self.finished = true;
                self.g.stats.count_abort(shard, cause);
                trace::emit(TraceKind::Abort, TxMode::Stm, Some(cause), end);
                history::abort();
                return Err(cause);
            }
        }
        // The commit event is recorded *before* the orecs are released: no
        // other thread can read our writes until release, so log order of
        // `Commit` events is a valid serialization order (see
        // `tle_base::history` module docs).
        history::commit();
        sched::yield_point(YieldPoint::OrecRelease);
        for &(oi, _) in self.bufs.locks.iter() {
            self.g.orecs.release(oi as usize, end);
        }
        self.finished = true;
        self.g.slots.publish_raw(self.slot_idx, tle_base::INACTIVE);
        let info = self.maybe_quiesce(end);
        self.g.stats.commits.inc(shard);
        trace::emit(TraceKind::Commit, TxMode::Stm, None, end);
        Ok(info)
    }

    /// The async commit split: identical to [`StmTx::commit`] up to and
    /// including publishing `INACTIVE`, but when a post-commit drain is
    /// required it is *returned* as a pending [`QuiesceTicket`] instead of
    /// being spun out inline. Everything executed here is non-blocking
    /// (clock CAS, orec releases, slot store), so the async runner may call
    /// it from an executor worker and poll the ticket via
    /// [`StmGlobal::quiesce_pass`](crate::StmGlobal::quiesce_pass) with
    /// yields in between. When the ticket is `None` the returned
    /// [`CommitInfo`] is final.
    pub fn commit_publish(mut self) -> Result<(CommitInfo, Option<QuiesceTicket>), AbortCause> {
        debug_assert!(!self.finished);
        let shard = self.slot_idx;
        if self.bufs.locks.is_empty() {
            self.finished = true;
            history::commit();
            self.g.slots.publish_raw(self.slot_idx, tle_base::INACTIVE);
            if self.g.ro_commit_fast_path()
                && !self.must_quiesce
                && !(self.no_quiesce && self.g.audit_noquiesce_enabled())
            {
                // Same soundness argument as the sync read-only fast path.
                self.g.stats.quiesce_skipped.inc(shard);
                self.g.stats.commits.inc(shard);
                trace::emit(TraceKind::Commit, TxMode::Stm, None, 0);
                return Ok((
                    CommitInfo {
                        end_time: 0,
                        quiesced: false,
                        quiesce_wait_ns: 0,
                    },
                    None,
                ));
            }
            let out = self.defer_quiesce(self.g.clock.now());
            self.g.stats.commits.inc(shard);
            trace::emit(TraceKind::Commit, TxMode::Stm, None, out.0.end_time);
            return Ok(out);
        }

        sched::yield_point(YieldPoint::ClockAdvance);
        let end = self.g.clock.advance();
        if end > self.start + 1
            && !mutant::armed(Mutant::SkipCommitValidation)
            && self.validate().is_err()
        {
            let cause = AbortCause::CommitValidation;
            self.rollback();
            self.finished = true;
            self.g.stats.count_abort(shard, cause);
            trace::emit(TraceKind::Abort, TxMode::Stm, Some(cause), end);
            history::abort();
            return Err(cause);
        }
        history::commit();
        sched::yield_point(YieldPoint::OrecRelease);
        for &(oi, _) in self.bufs.locks.iter() {
            self.g.orecs.release(oi as usize, end);
        }
        self.finished = true;
        self.g.slots.publish_raw(self.slot_idx, tle_base::INACTIVE);
        let out = self.defer_quiesce(end);
        self.g.stats.commits.inc(shard);
        trace::emit(TraceKind::Commit, TxMode::Stm, None, end);
        Ok(out)
    }

    /// Explicitly abort this attempt (conflict, explicit cancel, or a
    /// surrounding policy decision). Rolls back and releases all orecs.
    pub fn abort(mut self, cause: AbortCause) {
        self.rollback();
        self.finished = true;
        self.g.stats.count_abort(self.slot_idx, cause);
        self.g.slots.publish_raw(self.slot_idx, tle_base::INACTIVE);
        trace::emit(TraceKind::Abort, TxMode::Stm, Some(cause), self.start);
        history::abort();
    }

    fn rollback(&mut self) {
        if mutant::armed(Mutant::EarlyOrecRelease) && !self.bufs.locks.is_empty() {
            // Seeded bug: hand the orecs back while the undo log is still
            // unapplied — readers sample a clean orec over dirty data.
            let ver = self.g.clock.advance();
            while let Some((oi, _)) = self.bufs.locks.pop() {
                self.g.orecs.release(oi as usize, ver);
            }
            sched::yield_point(YieldPoint::OrecRelease);
        }
        // Undo in pop (reverse-insertion) order so repeated writes restore
        // the oldest value.
        while let Some((w, old)) = self.bufs.undo.pop() {
            // SAFETY: cells outlive the transaction (documented invariant).
            unsafe { (*w).store(old, Ordering::Release) };
        }
        if !self.bufs.locks.is_empty() {
            // Release at a *new* version: concurrent readers that sampled
            // the pre-lock word and then read an in-flight value must fail
            // their second orec sample.
            let ver = self.g.clock.advance();
            while let Some((oi, _)) = self.bufs.locks.pop() {
                self.g.orecs.release(oi as usize, ver);
            }
        }
        self.bufs.reads.clear();
    }

    /// Whether the domain policy (plus this transaction's annotations)
    /// requires a post-commit drain.
    fn quiesce_needed(&self) -> bool {
        (match self.g.policy() {
            QuiescePolicy::Always => true,
            QuiescePolicy::Never => self.must_quiesce,
            QuiescePolicy::Selective => self.must_quiesce || !self.no_quiesce,
        }) && !mutant::armed(Mutant::DropQuiesce)
    }

    /// Account for a skipped drain (counter + the §IV-C overlap audit).
    fn note_quiesce_skip(&self, upto: u64) {
        self.g.stats.quiesce_skipped.inc(self.slot_idx);
        if self.no_quiesce && self.g.audit_noquiesce_enabled() {
            // §IV-C audit: would the skipped drain have waited?
            let overlapped = self
                .g
                .slots
                .scan()
                .any(|(idx, v)| idx != self.slot_idx && v < upto);
            if overlapped {
                self.g.noquiesce_overlaps.inc(self.slot_idx);
            }
        }
    }

    /// The deferring counterpart of [`StmTx::maybe_quiesce`]: same policy
    /// decision and skip accounting, but a required drain becomes a pending
    /// [`QuiesceTicket`] for the caller to poll.
    fn defer_quiesce(&self, upto: u64) -> (CommitInfo, Option<QuiesceTicket>) {
        if !self.quiesce_needed() {
            self.note_quiesce_skip(upto);
            return (
                CommitInfo {
                    end_time: upto,
                    quiesced: false,
                    quiesce_wait_ns: 0,
                },
                None,
            );
        }
        let ticket = QuiesceTicket::new(upto, upto, self.slot_idx, self.deadline);
        (
            CommitInfo {
                end_time: upto,
                quiesced: true,
                quiesce_wait_ns: 0,
            },
            Some(ticket),
        )
    }

    fn maybe_quiesce(&self, upto: u64) -> CommitInfo {
        let end_time = upto;
        if !self.quiesce_needed() {
            self.note_quiesce_skip(upto);
            return CommitInfo {
                end_time,
                quiesced: false,
                quiesce_wait_ns: 0,
            };
        }
        let dog = Watchdog {
            deadline_ns: self.g.quiesce_deadline_ns(),
            stats: &self.g.stats,
            shard: self.slot_idx,
            tx_deadline: self.deadline,
        };
        let wait_ns = drain_watched(&self.g.slots, self.slot_idx, upto, Some(&dog));
        self.g.stats.quiesces.inc(self.slot_idx);
        self.g.stats.quiesce_wait_ns.add(self.slot_idx, wait_ns);
        self.g.stats.quiesce_hist.record(wait_ns);
        CommitInfo {
            end_time,
            quiesced: true,
            quiesce_wait_ns: wait_ns,
        }
    }
}

impl Drop for StmTx<'_> {
    fn drop(&mut self) {
        if !self.finished {
            // A panic (or early return) escaped the transactional closure:
            // roll back so no orec stays locked.
            self.rollback();
            self.g
                .stats
                .count_abort(self.slot_idx, AbortCause::Explicit);
            self.g.slots.publish_raw(self.slot_idx, tle_base::INACTIVE);
            trace::emit(
                TraceKind::Abort,
                TxMode::Stm,
                Some(AbortCause::Explicit),
                self.start,
            );
            history::abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StmGlobal;
    use std::sync::Arc;

    #[test]
    fn drop_without_commit_rolls_back_and_unlocks() {
        let g = StmGlobal::default();
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(3u64);
        {
            let mut tx = g.begin(slot);
            tx.write(&a, 8u64).unwrap();
            // tx dropped here without commit/abort.
        }
        assert_eq!(a.load_direct(), 3);
        // The orec must be unlocked: a fresh transaction can write it.
        let mut tx = g.begin(slot);
        tx.write(&a, 4u64).unwrap();
        tx.commit().unwrap();
        assert_eq!(a.load_direct(), 4);
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn repeated_writes_restore_oldest_on_abort() {
        let g = StmGlobal::default();
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(1u64);
        let mut tx = g.begin(slot);
        for v in 2..10u64 {
            tx.write(&a, v).unwrap();
        }
        tx.abort(AbortCause::Explicit);
        assert_eq!(a.load_direct(), 1);
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn update_combines_read_and_write() {
        let g = StmGlobal::default();
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(10u64);
        let mut tx = g.begin(slot);
        let new = tx.update(&a, |v| v * 3).unwrap();
        assert_eq!(new, 30);
        tx.commit().unwrap();
        assert_eq!(a.load_direct(), 30);
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn concurrent_counter_increments_never_lost() {
        let g = Arc::new(StmGlobal::default());
        let counter = Arc::new(TCell::new(0u64));
        const THREADS: usize = 8;
        const OPS: u64 = 2_000;

        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let g = Arc::clone(&g);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let slot = g.slots.register_raw().unwrap();
                    for _ in 0..OPS {
                        loop {
                            let mut tx = g.begin(slot);
                            let ok = (|| -> Result<(), AbortCause> {
                                tx.update(&*counter, |v| v + 1)?;
                                Ok(())
                            })();
                            match ok {
                                Ok(()) => {
                                    if tx.commit().is_ok() {
                                        break;
                                    }
                                }
                                Err(c) => tx.abort(c),
                            }
                            std::hint::spin_loop();
                        }
                    }
                    g.slots.unregister_raw(slot);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load_direct(), THREADS as u64 * OPS);
    }

    #[test]
    fn disjoint_writers_do_not_conflict() {
        // Cells engineered to different orecs are extremely likely with
        // Fibonacci hashing; verify two parallel writers both commit on the
        // first try for disjoint data most of the time.
        let g = StmGlobal::new(crate::QuiescePolicy::Never);
        let s1 = g.slots.register_raw().unwrap();
        let s2 = g.slots.register_raw().unwrap();
        let a = TCell::new(0u64);
        let b = TCell::new(0u64);
        if g.orecs.index_of(a.addr()) == g.orecs.index_of(b.addr()) {
            // False sharing in the orec table: skip (possible but rare).
            return;
        }
        let mut t1 = g.begin(s1);
        let mut t2 = g.begin(s2);
        t1.write(&a, 1u64).unwrap();
        t2.write(&b, 2u64).unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap();
        assert_eq!(a.load_direct(), 1);
        assert_eq!(b.load_direct(), 2);
        g.slots.unregister_raw(s1);
        g.slots.unregister_raw(s2);
    }

    #[test]
    fn commit_info_reports_quiescence_per_policy() {
        let g = StmGlobal::new(crate::QuiescePolicy::Selective);
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(0u64);

        let mut tx = g.begin(slot);
        tx.write(&a, 1u64).unwrap();
        let info = tx.commit().unwrap();
        assert!(info.quiesced, "selective without no_quiesce must drain");

        let mut tx = g.begin(slot);
        tx.write(&a, 2u64).unwrap();
        tx.no_quiesce();
        let info = tx.commit().unwrap();
        assert!(!info.quiesced, "no_quiesce must skip the drain");

        let mut tx = g.begin(slot);
        tx.write(&a, 3u64).unwrap();
        tx.no_quiesce();
        tx.will_free_memory();
        let info = tx.commit().unwrap();
        assert!(info.quiesced, "freeing memory overrides no_quiesce");
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn read_set_capacity_survives_abort_retry() {
        let g = StmGlobal::new(crate::QuiescePolicy::Never);
        let slot = g.slots.register_raw().unwrap();
        let cells: Vec<TCell<u64>> = (0..200u64).map(TCell::new).collect();
        let cap = {
            let mut tx = g.begin(slot);
            for c in &cells {
                tx.read(c).unwrap();
            }
            let cap = tx.read_spill_capacity();
            tx.abort(AbortCause::Explicit);
            cap
        };
        assert!(cap > 0, "200 reads must spill past the inline tier");
        // The retry attempt must lease the same block back, capacity intact.
        let tx = g.begin(slot);
        assert_eq!(tx.read_set_len(), 0, "reused buffers must arrive empty");
        assert!(
            tx.read_spill_capacity() >= cap,
            "retry lost capacity: {} < {cap}",
            tx.read_spill_capacity()
        );
        drop(tx);
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn ro_fast_path_skips_the_drain_but_freeing_still_drains() {
        let g = StmGlobal::new(crate::QuiescePolicy::Always);
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(1u64);
        assert!(g.ro_commit_fast_path(), "fast path must default on");

        let mut tx = g.begin(slot);
        tx.read(&a).unwrap();
        let info = tx.commit().unwrap();
        assert!(!info.quiesced, "read-only commit must skip the drain");
        assert_eq!(info.end_time, 0);
        assert_eq!(g.stats.quiesce_skipped.get(), 1);

        // The allocator contract (§IV-B) still forces a drain.
        let mut tx = g.begin(slot);
        tx.read(&a).unwrap();
        tx.will_free_memory();
        assert!(tx.commit().unwrap().quiesced);
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn ro_fast_path_can_be_disabled_for_ab_runs() {
        let g = StmGlobal::new(crate::QuiescePolicy::Always);
        g.set_ro_commit_fast_path(false);
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(1u64);
        let mut tx = g.begin(slot);
        tx.read(&a).unwrap();
        let info = tx.commit().unwrap();
        assert!(info.quiesced, "with the flag off, Always must drain");
        assert_eq!(g.stats.quiesces.get(), 1);
        g.slots.unregister_raw(slot);
    }

    #[test]
    fn never_policy_skips_quiesce_unless_freeing() {
        let g = StmGlobal::new(crate::QuiescePolicy::Never);
        let slot = g.slots.register_raw().unwrap();
        let a = TCell::new(0u64);
        let mut tx = g.begin(slot);
        tx.write(&a, 1u64).unwrap();
        assert!(!tx.commit().unwrap().quiesced);
        let mut tx = g.begin(slot);
        tx.write(&a, 2u64).unwrap();
        tx.will_free_memory();
        assert!(tx.commit().unwrap().quiesced);
        g.slots.unregister_raw(slot);
    }
}
