//! [`SoftTx`]: the algorithm-polymorphic software transaction handed to the
//! TLE runtime. Enum dispatch (not trait objects) keeps the per-access cost
//! at one predictable branch.

use crate::norec::NorecTx;
use crate::tx::{CommitInfo, StmTx};
use tle_base::{AbortCause, TCell, TxVal};

/// Which software TM algorithm a domain runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum StmAlgo {
    /// GCC's `ml_wt`: orec-based, write-through, quiescence for
    /// privatization safety. The algorithm of the paper's evaluation.
    MlWt = 0,
    /// NOrec: global sequence lock, value-based validation, write-back;
    /// privatization-safe without any drain. The ablation alternative.
    Norec = 1,
}

impl StmAlgo {
    /// Decode from the atomic representation.
    pub fn from_u8(v: u8) -> Self {
        if v == 1 {
            StmAlgo::Norec
        } else {
            StmAlgo::MlWt
        }
    }

    /// Stable label for benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            StmAlgo::MlWt => "ml_wt",
            StmAlgo::Norec => "NOrec",
        }
    }
}

/// A software transaction of whichever algorithm the domain selected.
pub enum SoftTx<'g> {
    /// An `ml_wt` attempt.
    MlWt(StmTx<'g>),
    /// A NOrec attempt.
    Norec(NorecTx<'g>),
}

impl<'g> SoftTx<'g> {
    /// Transactionally read a cell.
    #[inline]
    pub fn read<T: TxVal>(&mut self, cell: &TCell<T>) -> Result<T, AbortCause> {
        match self {
            SoftTx::MlWt(tx) => tx.read(cell),
            SoftTx::Norec(tx) => tx.read(cell),
        }
    }

    /// Transactionally write a cell.
    #[inline]
    pub fn write<T: TxVal>(&mut self, cell: &TCell<T>, v: T) -> Result<(), AbortCause> {
        match self {
            SoftTx::MlWt(tx) => tx.write(cell, v),
            SoftTx::Norec(tx) => tx.write(cell, v),
        }
    }

    /// Read-modify-write convenience.
    #[inline]
    pub fn update<T: TxVal>(
        &mut self,
        cell: &TCell<T>,
        f: impl FnOnce(T) -> T,
    ) -> Result<T, AbortCause> {
        match self {
            SoftTx::MlWt(tx) => tx.update(cell, f),
            SoftTx::Norec(tx) => tx.update(cell, f),
        }
    }

    /// `TM_NoQuiesce` (no-op under NOrec, which never drains).
    #[inline]
    pub fn no_quiesce(&mut self) {
        if let SoftTx::MlWt(tx) = self {
            tx.no_quiesce();
        }
    }

    /// Allocator-mandated drain override (no-op under NOrec).
    #[inline]
    pub fn will_free_memory(&mut self) {
        if let SoftTx::MlWt(tx) = self {
            tx.will_free_memory();
        }
    }

    /// Attach the transaction's retry-time budget so the post-commit drain
    /// can observe an overrun (no-op under NOrec, which never drains).
    #[inline]
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        if let SoftTx::MlWt(tx) = self {
            tx.set_deadline(deadline);
        }
    }

    /// Whether this attempt wrote anything.
    #[inline]
    pub fn is_writer(&self) -> bool {
        match self {
            SoftTx::MlWt(tx) => tx.is_writer(),
            SoftTx::Norec(tx) => tx.is_writer(),
        }
    }

    /// Attempt to commit.
    pub fn commit(self) -> Result<CommitInfo, AbortCause> {
        match self {
            SoftTx::MlWt(tx) => tx.commit(),
            SoftTx::Norec(tx) => tx.commit(),
        }
    }

    /// The async commit split ([`StmTx::commit_publish`]): non-blocking
    /// commit, pending drain returned as a ticket. NOrec commits abort on
    /// sequence-lock contention rather than waiting and never drain, so its
    /// ordinary commit already is non-blocking and the ticket is `None`.
    pub fn commit_publish(self) -> Result<(CommitInfo, Option<crate::QuiesceTicket>), AbortCause> {
        match self {
            SoftTx::MlWt(tx) => tx.commit_publish(),
            SoftTx::Norec(tx) => tx.commit().map(|info| (info, None)),
        }
    }

    /// Abort this attempt.
    pub fn abort(self, cause: AbortCause) {
        match self {
            SoftTx::MlWt(tx) => tx.abort(cause),
            SoftTx::Norec(tx) => tx.abort(cause),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QuiescePolicy, StmGlobal};

    #[test]
    fn algo_u8_roundtrip_and_labels() {
        assert_eq!(StmAlgo::from_u8(StmAlgo::MlWt as u8), StmAlgo::MlWt);
        assert_eq!(StmAlgo::from_u8(StmAlgo::Norec as u8), StmAlgo::Norec);
        assert_eq!(StmAlgo::MlWt.label(), "ml_wt");
        assert_eq!(StmAlgo::Norec.label(), "NOrec");
    }

    #[test]
    fn begin_soft_dispatches_on_domain_algo() {
        for algo in [StmAlgo::MlWt, StmAlgo::Norec] {
            let g = StmGlobal::new(QuiescePolicy::Never);
            g.set_algo(algo);
            let slot = g.slots.register_raw().unwrap();
            let a = TCell::new(1u64);
            let mut tx = g.begin_soft(slot);
            match (&tx, algo) {
                (SoftTx::MlWt(_), StmAlgo::MlWt) | (SoftTx::Norec(_), StmAlgo::Norec) => {}
                _ => panic!("begin_soft ignored the algorithm selection"),
            }
            tx.update(&a, |v| v * 2).unwrap();
            tx.commit().unwrap();
            assert_eq!(a.load_direct(), 2);
            g.slots.unregister_raw(slot);
        }
    }

    #[test]
    fn both_algorithms_roll_back_on_abort() {
        for algo in [StmAlgo::MlWt, StmAlgo::Norec] {
            let g = StmGlobal::new(QuiescePolicy::Never);
            g.set_algo(algo);
            let slot = g.slots.register_raw().unwrap();
            let a = TCell::new(5u64);
            let mut tx = g.begin_soft(slot);
            tx.write(&a, 100u64).unwrap();
            tx.abort(AbortCause::Explicit);
            assert_eq!(a.load_direct(), 5, "{algo:?} leaked a write");
            g.slots.unregister_raw(slot);
        }
    }
}
