//! Quiescence: the privatization-safety drain (paper §IV).
//!
//! When a transaction commits at time `W` and the code after it accesses
//! data the transaction made thread-private, a concurrent transaction that
//! started before `W` may still be running — doomed to abort — and in a
//! write-through STM its *undo writes* can land on the privatized data after
//! the privatizer has moved on. GCC's `ml_wt` therefore drains: the
//! committing thread waits until every concurrent transaction with an older
//! start time has committed, or aborted and finished rolling back.
//!
//! The drain is the RCU-style epoch scan in [`drain`]: walk every thread
//! slot and spin until its published start time is `INACTIVE` or ≥ `upto`.
//! Doomed transactions are guaranteed to make progress out of the window:
//! their next read observes the advanced clock, fails validation, and the
//! abort path deactivates the slot; a transaction that instead keeps running
//! will extend (republished, larger start) — either way the scan terminates.
//!
//! The paper's observations reproduced by this module:
//! - cost is linear in thread count (one cache miss per active slot);
//! - a long-running transaction blocks *unrelated* committers (lock erasure
//!   makes the drain global);
//! - paradoxically, the drain acts as congestion control under high
//!   contention (§VII-C) — committers pause instead of immediately starting
//!   the next conflicting transaction.

use std::time::Instant;
use tle_base::fault::{self, Hazard};
use tle_base::sched::{self, YieldPoint};
use tle_base::stats::{fmt_ns, TxStats};
use tle_base::trace::{self, TraceKind, TxMode};
#[cfg(test)]
use tle_base::INACTIVE;
use tle_base::{AbortCause, SlotRegistry};

/// Quiescence policy for an STM domain. Maps to the paper's three
/// configurations in Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum QuiescePolicy {
    /// Drain after every transaction (GCC ≥ 2016; supports proxy
    /// privatization). The paper's "STM" baseline.
    Always = 0,
    /// Never drain, except for allocator-mandated frees. The paper's "NoQ" —
    /// fast but *not privatization-safe in general*; safe here only because
    /// our runtime never dereferences recycled memory non-transactionally
    /// (type-stable word cells), but application-level invariants mirroring
    /// C++ would be racy. Provided for the Figure 5 comparison.
    Never = 1,
    /// Drain unless the transaction called `TM_NoQuiesce`
    /// ([`crate::StmTx::no_quiesce`]). The paper's "SelectNoQ" proposal.
    Selective = 2,
}

impl QuiescePolicy {
    /// Decode from the atomic representation.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => QuiescePolicy::Always,
            1 => QuiescePolicy::Never,
            _ => QuiescePolicy::Selective,
        }
    }

    /// Stable label for benchmark tables (matches the paper's legend).
    pub fn label(self) -> &'static str {
        match self {
            QuiescePolicy::Always => "STM",
            QuiescePolicy::Never => "NoQ",
            QuiescePolicy::Selective => "SelectNoQ",
        }
    }
}

/// Deadline supervision for a quiescence drain.
///
/// A drain that waits past `deadline_ns` *trips* the watchdog: the trip is
/// counted in [`TxStats::watchdog_trips`], a `QuiesceStall` trace event is
/// emitted, and a per-cause abort report is dumped to stderr — then the
/// drain keeps waiting. The watchdog turns a silent stall into a diagnosed
/// one; it never gives up, because abandoning the drain would break
/// privatization safety.
pub struct Watchdog<'a> {
    /// Trip once the drain has waited longer than this.
    pub deadline_ns: u64,
    /// Where to count the trip (and the source of the dumped report).
    pub stats: &'a TxStats,
    /// Shard hint for the counter (typically the draining slot).
    pub shard: usize,
    /// The committing *transaction's* retry-time budget, when it has one
    /// (`TxHints::with_deadline` upstream). A drain that outlives it emits
    /// one `DeadlineExceeded` trace event — observation only: the commit
    /// has already happened and abandoning the drain would break
    /// privatization safety, so the drain still runs to completion and the
    /// budget overrun surfaces to the *next* retry-ladder decision point.
    pub tx_deadline: Option<Instant>,
}

impl Watchdog<'_> {
    /// Record a trip and dump the diagnosis. Called at most once per drain.
    fn trip(&self, waited_ns: u64, upto: u64) {
        self.stats.watchdog_trips.inc(self.shard);
        trace::emit(TraceKind::QuiesceStall, TxMode::Stm, None, waited_ns);
        let snap = self.stats.snapshot();
        let mut report = format!(
            "quiesce watchdog: drain upto={} waited {} (deadline {}); \
             commits={} aborts={} per-cause:",
            upto,
            fmt_ns(waited_ns),
            fmt_ns(self.deadline_ns),
            snap.commits,
            snap.aborts,
        );
        for cause in AbortCause::ALL {
            let n = snap.cause(cause);
            if n > 0 {
                report.push_str(&format!(" {}={}", cause.label(), n));
            }
        }
        eprintln!("{report}");
    }
}

/// Spin until every slot other than `self_idx` is inactive or has a start
/// time ≥ `upto`. Returns the nanoseconds spent waiting (0 if the scan
/// passed on the first sweep).
pub fn drain(slots: &SlotRegistry, self_idx: usize, upto: u64) -> u64 {
    drain_watched(slots, self_idx, upto, None)
}

/// [`drain`] under optional watchdog supervision. The commit path always
/// supplies a watchdog (deadline configured on `StmGlobal`); the plain
/// [`drain`] entry point keeps the historical unsupervised signature.
pub fn drain_watched(
    slots: &SlotRegistry,
    self_idx: usize,
    upto: u64,
    dog: Option<&Watchdog<'_>>,
) -> u64 {
    // Fault oracle: delay the drain itself. The timer starts before the
    // injected stall so the stall counts as waiting time and can drive the
    // watchdog past its deadline.
    sched::yield_point(YieldPoint::QuiesceScan);
    let t0 = Instant::now();
    let injected = fault::maybe_stall(Hazard::QuiesceDelay);
    if injected > 0 {
        trace::emit(
            TraceKind::FaultInject,
            TxMode::Stm,
            None,
            Hazard::QuiesceDelay.index() as u64,
        );
    }

    // Fast path: single sweep with no waiting.
    let mut blocked = false;
    for (idx, v) in slots.scan() {
        if idx != self_idx && v < upto {
            blocked = true;
            break;
        }
    }
    if !blocked && injected == 0 {
        return 0;
    }

    trace::emit(TraceKind::QuiesceStart, TxMode::Stm, None, upto);
    let mut tripped = false;
    let mut budget_noted = false;
    let mut check_deadline = |t0: &Instant| -> u64 {
        let ns = t0.elapsed().as_nanos() as u64;
        if let Some(d) = dog {
            if !tripped && ns > d.deadline_ns {
                tripped = true;
                d.trip(ns, upto);
            }
            if !budget_noted && d.tx_deadline.is_some_and(|t| Instant::now() >= t) {
                budget_noted = true;
                trace::emit(TraceKind::DeadlineExceeded, TxMode::Stm, None, ns);
            }
        }
        ns
    };
    if injected > 0 {
        check_deadline(&t0);
    }
    for (idx, _) in slots.scan() {
        if idx == self_idx {
            continue;
        }
        let mut spins = 0u32;
        while slots.value(idx) < upto {
            spins += 1;
            sched::spin_hint(YieldPoint::QuiesceScan);
            if spins < 16 {
                std::hint::spin_loop();
            } else {
                // The straggler is likely descheduled; give it the CPU.
                std::thread::yield_now();
                if spins.is_multiple_of(64) {
                    check_deadline(&t0);
                }
            }
        }
    }
    let ns = t0.elapsed().as_nanos() as u64;
    trace::emit(TraceKind::QuiesceEnd, TxMode::Stm, None, ns);
    ns
}

/// A post-commit drain split out of an async commit
/// ([`StmTx::commit_publish`](crate::StmTx::commit_publish)).
///
/// The commit itself has already happened — clock advanced, orecs released,
/// slot deactivated — and only the privatization drain remains. Instead of
/// spinning, the async runner calls
/// [`StmGlobal::quiesce_pass`](crate::StmGlobal::quiesce_pass) once per
/// poll, yielding the executor worker between passes; each pass is a single
/// non-blocking sweep of the slot registry. Termination mirrors the
/// blocking drain's argument: atomic blocks never suspend mid-speculation
/// (they are synchronous closures; lint rule R6 enforces it), so every
/// straggler the sweep observes is running on some live thread or task and
/// must commit, abort, or extend past `upto` in bounded steps.
///
/// Watchdog supervision carries over: a ticket that stays blocked past the
/// domain's drain deadline trips once (report + counter), then keeps
/// polling — abandoning the drain would break privatization safety.
pub struct QuiesceTicket {
    pub(crate) upto: u64,
    pub(crate) end_time: u64,
    pub(crate) slot_idx: usize,
    pub(crate) tx_deadline: Option<Instant>,
    started: Instant,
    announced: bool,
    tripped: bool,
    budget_noted: bool,
}

impl QuiesceTicket {
    pub(crate) fn new(
        upto: u64,
        end_time: u64,
        slot_idx: usize,
        tx_deadline: Option<Instant>,
    ) -> Self {
        QuiesceTicket {
            upto,
            end_time,
            slot_idx,
            tx_deadline,
            started: Instant::now(),
            announced: false,
            tripped: false,
            budget_noted: false,
        }
    }

    /// Commit timestamp of the transaction that owes this drain.
    pub fn end_time(&self) -> u64 {
        self.end_time
    }

    /// One non-blocking sweep. `Some(waited_ns)` once every older slot has
    /// drained (0 when the very first sweep was already clean); `None`
    /// while a straggler is still inside the window.
    pub(crate) fn pass(&mut self, slots: &SlotRegistry, dog: &Watchdog<'_>) -> Option<u64> {
        sched::yield_point(YieldPoint::QuiesceScan);
        let blocked = slots
            .scan()
            .any(|(idx, v)| idx != self.slot_idx && v < self.upto);
        if !blocked {
            if !self.announced {
                return Some(0);
            }
            let ns = self.started.elapsed().as_nanos() as u64;
            trace::emit(TraceKind::QuiesceEnd, TxMode::Stm, None, ns);
            return Some(ns);
        }
        if !self.announced {
            self.announced = true;
            trace::emit(TraceKind::QuiesceStart, TxMode::Stm, None, self.upto);
        }
        sched::spin_hint(YieldPoint::QuiesceScan);
        let ns = self.started.elapsed().as_nanos() as u64;
        if !self.tripped && ns > dog.deadline_ns {
            self.tripped = true;
            dog.trip(ns, self.upto);
        }
        if !self.budget_noted && self.tx_deadline.is_some_and(|t| Instant::now() >= t) {
            self.budget_noted = true;
            trace::emit(TraceKind::DeadlineExceeded, TxMode::Stm, None, ns);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn drain_passes_with_no_active_transactions() {
        let slots = SlotRegistry::new();
        let me = slots.register_raw().unwrap();
        assert_eq!(drain(&slots, me, 100), 0);
    }

    #[test]
    fn drain_ignores_own_slot() {
        let slots = SlotRegistry::new();
        let me = slots.register_raw().unwrap();
        slots.publish_raw(me, 1); // "my" stale value must not self-deadlock
        assert_eq!(drain(&slots, me, 100), 0);
    }

    #[test]
    fn drain_ignores_newer_transactions() {
        let slots = SlotRegistry::new();
        let me = slots.register_raw().unwrap();
        let other = slots.register_raw().unwrap();
        slots.publish_raw(other, 200); // started after our commit time
        assert_eq!(drain(&slots, me, 100), 0);
    }

    #[test]
    fn drain_waits_for_older_transaction() {
        let slots = Arc::new(SlotRegistry::new());
        let me = slots.register_raw().unwrap();
        let other = slots.register_raw().unwrap();
        slots.publish_raw(other, 50);

        let released = Arc::new(AtomicBool::new(false));
        let waiter = {
            let slots = Arc::clone(&slots);
            let released = Arc::clone(&released);
            std::thread::spawn(move || {
                let ns = drain(&slots, me, 100);
                assert!(
                    released.load(Ordering::SeqCst),
                    "drain returned before the older transaction finished"
                );
                assert!(ns > 0);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        released.store(true, Ordering::SeqCst);
        slots.publish_raw(other, INACTIVE);
        waiter.join().unwrap();
    }

    #[test]
    fn drain_released_by_extension_not_only_commit() {
        // A long-running transaction that *extends* past the committer's
        // timestamp also releases the drain (it validated against the
        // commit, so it cannot be doomed by it).
        let slots = Arc::new(SlotRegistry::new());
        let me = slots.register_raw().unwrap();
        let other = slots.register_raw().unwrap();
        slots.publish_raw(other, 50);

        let waiter = {
            let slots = Arc::clone(&slots);
            std::thread::spawn(move || drain(&slots, me, 100))
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        slots.publish_raw(other, 150); // extension, still active
        let ns = waiter.join().unwrap();
        assert!(ns > 0);
    }

    #[test]
    fn ticket_first_pass_clean_reports_zero_wait() {
        let slots = SlotRegistry::new();
        let me = slots.register_raw().unwrap();
        let stats = tle_base::stats::TxStats::new();
        let dog = Watchdog {
            deadline_ns: u64::MAX,
            stats: &stats,
            shard: me,
            tx_deadline: None,
        };
        let mut t = QuiesceTicket::new(100, 100, me, None);
        assert_eq!(t.pass(&slots, &dog), Some(0));
    }

    #[test]
    fn ticket_blocks_until_straggler_leaves_window() {
        let slots = SlotRegistry::new();
        let me = slots.register_raw().unwrap();
        let other = slots.register_raw().unwrap();
        slots.publish_raw(other, 50);
        let stats = tle_base::stats::TxStats::new();
        let dog = Watchdog {
            deadline_ns: u64::MAX,
            stats: &stats,
            shard: me,
            tx_deadline: None,
        };
        let mut t = QuiesceTicket::new(100, 100, me, None);
        assert_eq!(t.pass(&slots, &dog), None);
        assert_eq!(t.pass(&slots, &dog), None, "still blocked");
        slots.publish_raw(other, INACTIVE);
        let ns = t.pass(&slots, &dog).expect("drained");
        assert!(ns > 0, "a blocked ticket reports its waiting time");
    }

    #[test]
    fn ticket_trips_watchdog_once() {
        let slots = SlotRegistry::new();
        let me = slots.register_raw().unwrap();
        let other = slots.register_raw().unwrap();
        slots.publish_raw(other, 50);
        let stats = tle_base::stats::TxStats::new();
        let dog = Watchdog {
            deadline_ns: 0, // any blocked pass is past the deadline
            stats: &stats,
            shard: me,
            tx_deadline: None,
        };
        let mut t = QuiesceTicket::new(100, 100, me, None);
        assert_eq!(t.pass(&slots, &dog), None);
        assert_eq!(t.pass(&slots, &dog), None);
        assert_eq!(
            stats.watchdog_trips.get(),
            1,
            "the trip must fire exactly once per drain"
        );
    }

    #[test]
    fn policy_labels_match_paper_legend() {
        assert_eq!(QuiescePolicy::Always.label(), "STM");
        assert_eq!(QuiescePolicy::Never.label(), "NoQ");
        assert_eq!(QuiescePolicy::Selective.label(), "SelectNoQ");
    }

    #[test]
    fn policy_u8_roundtrip() {
        for p in [
            QuiescePolicy::Always,
            QuiescePolicy::Never,
            QuiescePolicy::Selective,
        ] {
            assert_eq!(QuiescePolicy::from_u8(p as u8), p);
        }
    }
}
