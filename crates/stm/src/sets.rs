//! Reusable transaction-set buffers: an inline small-buffer tier plus a
//! thread-local lease pool.
//!
//! Profiling the fig5 microbenchmarks showed two allocation pathologies on
//! the STM hot path:
//!
//! 1. **Retry churn**: every [`crate::StmTx`] attempt allocated fresh
//!    `reads`/`undo`/`locks` vectors, so a transaction that aborts `k` times
//!    pays `3(k+1)` heap round-trips before it commits. The paper's
//!    high-contention figures retry constantly — exactly where the allocator
//!    traffic hurts most.
//! 2. **Tiny sets on the heap at all**: the common critical section touches
//!    a handful of words; even the *first* attempt's vectors are pure
//!    overhead.
//!
//! [`SmallSet`] fixes (2) with an inline array tier that spills to a `Vec`
//! only past `N` entries, and the [`lease`]/[`BufLease`] pool fixes (1) by
//! handing each attempt the previous attempt's (cleared, capacity-intact)
//! buffers. One pooled [`TxBufs`] block serves both STM flavours (`ml_wt`
//! and NOrec), so switching algorithms mid-bench reuses the same storage.
//!
//! The pool keeps at most one buffer block per thread (the steady state is
//! one live transaction per thread; a same-thread *nested/interleaved*
//! second transaction — the model-checking harness does this — simply takes
//! a fresh block). Reuse can be disabled globally with [`set_buf_reuse`] so
//! `tle-bench` can measure the before/after; [`buf_alloc_stats`] exposes
//! fresh-allocation, reuse and spill counts for the emitted JSON.

use std::cell::Cell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use tle_base::stats::Counter;

/// Inline capacity of the read-set tiers (entries before heap spill).
/// Sized from the fig5 microbenchmarks: list traversals log tens of reads,
/// hash/tree operations single digits.
pub const INLINE_READS: usize = 64;

/// Inline capacity of the write-side tiers (undo log, lock set, redo log).
/// Write sets are much smaller than read sets in every paper workload.
pub const INLINE_WRITES: usize = 16;

/// A LIFO set with `N` inline slots and a heap spill tier.
///
/// `push`/`pop` are stack-ordered across the spill boundary (the spill tier
/// pops first), which is exactly the reverse-of-insertion order the undo
/// log needs. `clear` keeps the spill `Vec`'s capacity, so a reused buffer
/// never re-grows for a same-shaped retry.
pub struct SmallSet<T: Copy, const N: usize> {
    inline: [T; N],
    /// Number of occupied inline slots (`<= N`).
    len: usize,
    spill: Vec<T>,
}

impl<T: Copy, const N: usize> SmallSet<T, N> {
    /// An empty set. `fill` initialises the (logically vacant) inline slots;
    /// it is never observable through the public API.
    pub fn with_fill(fill: T) -> Self {
        SmallSet {
            inline: [fill; N],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Append an entry (inline until `N`, then heap).
    #[inline]
    pub fn push(&mut self, v: T) {
        if self.len < N {
            self.inline[self.len] = v;
            self.len += 1;
        } else {
            self.spill.push(v);
        }
    }

    /// Remove and return the most recently pushed entry.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        if let Some(v) = self.spill.pop() {
            Some(v)
        } else if self.len > 0 {
            self.len -= 1;
            Some(self.inline[self.len])
        } else {
            None
        }
    }

    /// Iterate in insertion order. (Concrete return type so the borrow
    /// checker can see the iterator has no destructor.)
    #[inline]
    pub fn iter(&self) -> std::iter::Chain<std::slice::Iter<'_, T>, std::slice::Iter<'_, T>> {
        self.inline[..self.len].iter().chain(self.spill.iter())
    }

    /// Iterate mutably in insertion order.
    #[inline]
    pub fn iter_mut(
        &mut self,
    ) -> std::iter::Chain<std::slice::IterMut<'_, T>, std::slice::IterMut<'_, T>> {
        self.inline[..self.len]
            .iter_mut()
            .chain(self.spill.iter_mut())
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len + self.spill.len()
    }

    /// Whether the set holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0 && self.spill.is_empty()
    }

    /// Drop all entries, keeping the spill tier's capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Whether any entry currently lives in the heap spill tier.
    #[inline]
    pub fn spilled(&self) -> bool {
        !self.spill.is_empty()
    }

    /// Heap capacity retained by the spill tier (test introspection).
    #[inline]
    pub fn spill_capacity(&self) -> usize {
        self.spill.capacity()
    }
}

/// The full per-transaction buffer block, pooled per thread.
///
/// `ml_wt` uses `reads`/`undo`/`locks`; NOrec uses `nreads`/`nwrites`. The
/// block is boxed so a lease moves a pointer, not ~3 KiB of arrays.
pub(crate) struct TxBufs {
    /// `ml_wt`: (orec index, orec word observed at read time).
    pub reads: SmallSet<(u32, u64), INLINE_READS>,
    /// `ml_wt`: (cell pointer, old word), rolled back in reverse order.
    pub undo: SmallSet<(*const AtomicU64, u64), INLINE_WRITES>,
    /// `ml_wt`: (orec index, orec word immediately before we locked it).
    pub locks: SmallSet<(u32, u64), INLINE_WRITES>,
    /// NOrec value log: (cell pointer, observed value).
    pub nreads: SmallSet<(*const AtomicU64, u64), INLINE_READS>,
    /// NOrec redo log: (cell pointer, address, value).
    pub nwrites: SmallSet<(*const AtomicU64, usize, u64), INLINE_WRITES>,
}

impl TxBufs {
    fn new() -> Self {
        TxBufs {
            reads: SmallSet::with_fill((0, 0)),
            undo: SmallSet::with_fill((std::ptr::null(), 0)),
            locks: SmallSet::with_fill((0, 0)),
            nreads: SmallSet::with_fill((std::ptr::null(), 0)),
            nwrites: SmallSet::with_fill((std::ptr::null(), 0, 0)),
        }
    }

    fn any_spilled(&self) -> bool {
        self.reads.spilled()
            || self.undo.spilled()
            || self.locks.spilled()
            || self.nreads.spilled()
            || self.nwrites.spilled()
    }

    fn clear(&mut self) {
        self.reads.clear();
        self.undo.clear();
        self.locks.clear();
        self.nreads.clear();
        self.nwrites.clear();
    }
}

thread_local! {
    /// The per-thread one-slot buffer pool.
    static POOL: Cell<Option<Box<TxBufs>>> = const { Cell::new(None) };
}

/// Global reuse switch (on by default; `tle-bench` flips it for A/B runs).
static REUSE: AtomicBool = AtomicBool::new(true);
static FRESH_ALLOCS: Counter = Counter::new();
static REUSED: Counter = Counter::new();
static SPILLS: Counter = Counter::new();

/// Enable or disable cross-retry buffer reuse (process-global). With reuse
/// off every transaction attempt allocates a fresh block and drops it on
/// completion — the pre-fix behaviour, kept measurable for `BENCH_<n>.json`.
pub fn set_buf_reuse(on: bool) {
    REUSE.store(on, Ordering::Relaxed);
}

/// Whether cross-retry buffer reuse is currently enabled.
pub fn buf_reuse_enabled() -> bool {
    REUSE.load(Ordering::Relaxed)
}

/// Allocation counters for the transaction-set pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufAllocStats {
    /// Buffer blocks allocated fresh from the heap.
    pub fresh_allocs: u64,
    /// Leases served from the thread-local pool (no allocation).
    pub reused: u64,
    /// Leases returned with at least one set spilled past its inline tier.
    pub spills: u64,
}

/// Snapshot the pool's allocation counters.
pub fn buf_alloc_stats() -> BufAllocStats {
    BufAllocStats {
        fresh_allocs: FRESH_ALLOCS.get(),
        reused: REUSED.get(),
        spills: SPILLS.get(),
    }
}

/// Reset the pool's allocation counters (between benchmark trials).
pub fn reset_buf_alloc_stats() {
    FRESH_ALLOCS.reset();
    REUSED.reset();
    SPILLS.reset();
}

/// Drop the calling thread's parked buffer block, if any.
///
/// Same-seed reproducibility runs (the torture harness) call this before
/// each run: a block parked by a *previous* run would satisfy the first
/// lease without touching the allocator, shifting every later heap
/// allocation — and with address-hashed orec striping, a shifted heap is a
/// different conflict pattern, so "same seed, same trace" would no longer
/// hold. Draining restores the empty-pool starting state. Counters are
/// unaffected.
pub fn drain_buf_pool() {
    POOL.with(|p| drop(p.take()));
}

/// A leased buffer block. Derefs to [`TxBufs`]; on drop the block is
/// cleared (capacity kept) and returned to this thread's pool.
pub(crate) struct BufLease {
    bufs: Option<Box<TxBufs>>,
    shard: usize,
}

/// Lease a buffer block for one transaction attempt on `shard`'s thread.
pub(crate) fn lease(shard: usize) -> BufLease {
    lease_with(shard, buf_reuse_enabled())
}

fn lease_with(shard: usize, reuse: bool) -> BufLease {
    if reuse {
        if let Some(b) = POOL.with(|p| p.take()) {
            REUSED.inc(shard);
            return BufLease {
                bufs: Some(b),
                shard,
            };
        }
    }
    FRESH_ALLOCS.inc(shard);
    BufLease {
        bufs: Some(Box::new(TxBufs::new())),
        shard,
    }
}

impl Deref for BufLease {
    type Target = TxBufs;
    #[inline]
    fn deref(&self) -> &TxBufs {
        self.bufs.as_ref().expect("lease outlived its buffers")
    }
}

impl DerefMut for BufLease {
    #[inline]
    fn deref_mut(&mut self) -> &mut TxBufs {
        self.bufs.as_mut().expect("lease outlived its buffers")
    }
}

impl Drop for BufLease {
    fn drop(&mut self) {
        if let Some(mut b) = self.bufs.take() {
            if b.any_spilled() {
                SPILLS.inc(self.shard);
            }
            b.clear();
            if buf_reuse_enabled() {
                // A same-thread interleaved transaction may have parked a
                // block already; keep the most recently used one.
                POOL.with(|p| p.set(Some(b)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_is_lifo_across_the_spill_boundary() {
        let mut s: SmallSet<(u32, u64), 4> = SmallSet::with_fill((0, 0));
        for i in 0..10u32 {
            s.push((i, u64::from(i) * 10));
        }
        assert_eq!(s.len(), 10);
        assert!(s.spilled(), "10 entries must spill past 4 inline slots");
        let drained: Vec<u32> = std::iter::from_fn(|| s.pop()).map(|(i, _)| i).collect();
        assert_eq!(drained, (0..10u32).rev().collect::<Vec<_>>());
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn iter_is_insertion_ordered_and_iter_mut_writes_through() {
        let mut s: SmallSet<(u32, u64), 2> = SmallSet::with_fill((0, 0));
        for i in 0..5u32 {
            s.push((i, 0));
        }
        let seen: Vec<u32> = s.iter().map(|&(i, _)| i).collect();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        for e in s.iter_mut() {
            e.1 = u64::from(e.0) + 100;
        }
        assert!(s.iter().all(|&(i, v)| v == u64::from(i) + 100));
    }

    #[test]
    fn clear_keeps_spill_capacity() {
        let mut s: SmallSet<(u32, u64), 2> = SmallSet::with_fill((0, 0));
        for i in 0..50u32 {
            s.push((i, 0));
        }
        let cap = s.spill_capacity();
        assert!(cap >= 48);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.spilled());
        assert_eq!(s.spill_capacity(), cap, "clear must not shrink capacity");
    }

    #[test]
    fn lease_returns_capacity_to_the_pool_across_a_retry_cycle() {
        // Simulates abort-retry: attempt 1 spills, "aborts" (lease drops),
        // attempt 2 must get the same block back, capacity intact.
        let cap = {
            let mut l = lease_with(0, true);
            for i in 0..(INLINE_READS + 40) as u32 {
                l.reads.push((i, 0));
            }
            assert!(l.reads.spilled());
            l.reads.spill_capacity()
        };
        assert!(cap >= 40);
        let l = lease_with(0, true);
        assert!(l.reads.is_empty(), "reused block must arrive cleared");
        assert!(
            l.reads.spill_capacity() >= cap,
            "spill capacity must survive the retry cycle ({} < {cap})",
            l.reads.spill_capacity()
        );
    }

    #[test]
    fn disabled_reuse_always_leases_fresh_blocks() {
        // Park a warmed block in this thread's pool first.
        {
            let mut l = lease_with(0, true);
            for i in 0..(INLINE_READS + 8) as u32 {
                l.reads.push((i, 0));
            }
        }
        // With reuse off the pool is bypassed: fresh block, zero capacity.
        let l = lease_with(0, false);
        assert_eq!(l.reads.spill_capacity(), 0);
    }

    #[test]
    fn interleaved_same_thread_leases_get_distinct_blocks() {
        let a = lease_with(0, true);
        let b = lease_with(0, true);
        let pa = &*a as *const TxBufs;
        let pb = &*b as *const TxBufs;
        assert_ne!(pa, pb, "overlapping leases must never alias");
    }
}
