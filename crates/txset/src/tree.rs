//! The tree-based set: an internal (unbalanced) binary search tree over
//! 8-bit keys, one elided lock. Random keys keep the expected depth
//! logarithmic; conflicts concentrate near the root — the paper's
//! intermediate-contention microbenchmark (Figure 5 e/f).

use crate::{TxSet, NIL};
use tle_base::TCell;
use tle_core::{ElidableMutex, ThreadHandle, TxCtx, TxError};

/// 8-bit keys, per the paper.
const KEY_SPACE: u64 = 256;
const POOL: usize = KEY_SPACE as usize + 128;

struct Node {
    key: TCell<u64>,
    left: TCell<u32>,
    right: TCell<u32>,
}

/// Transactional BST set. See the module docs.
pub struct TxTreeSet {
    lock: ElidableMutex,
    root: TCell<u32>,
    /// Free list threaded through `left`.
    free: TCell<u32>,
    nodes: Box<[Node]>,
}

impl TxTreeSet {
    /// An empty set.
    pub fn new() -> Self {
        let nodes: Box<[Node]> = (0..POOL)
            .map(|i| Node {
                key: TCell::new(0),
                left: TCell::new(if i + 1 < POOL { i as u32 + 1 } else { NIL }),
                right: TCell::new(NIL),
            })
            .collect();
        TxTreeSet {
            lock: ElidableMutex::new("tree-set"),
            root: TCell::new(NIL),
            free: TCell::new(0),
            nodes,
        }
    }

    fn alloc(&self, ctx: &mut TxCtx<'_>) -> Result<u32, TxError> {
        let idx = ctx.read(&self.free)?;
        assert_ne!(idx, NIL, "tree-set node pool exhausted");
        let next = ctx.read(&self.nodes[idx as usize].left)?;
        ctx.write(&self.free, next)?;
        Ok(idx)
    }

    fn release(&self, ctx: &mut TxCtx<'_>, idx: u32) -> Result<(), TxError> {
        let f = ctx.read(&self.free)?;
        ctx.write(&self.nodes[idx as usize].left, f)?;
        ctx.write(&self.nodes[idx as usize].right, NIL)?;
        ctx.write(&self.free, idx)?;
        Ok(())
    }

    /// Find `(parent, node)` for `key`; `node == NIL` if absent, in which
    /// case `parent` is the attachment point (or `NIL` for an empty tree).
    fn locate(&self, ctx: &mut TxCtx<'_>, key: u64) -> Result<(u32, u32), TxError> {
        let mut parent = NIL;
        let mut cur = ctx.read(&self.root)?;
        while cur != NIL {
            let k = ctx.read(&self.nodes[cur as usize].key)?;
            if k == key {
                break;
            }
            parent = cur;
            cur = if key < k {
                ctx.read(&self.nodes[cur as usize].left)?
            } else {
                ctx.read(&self.nodes[cur as usize].right)?
            };
        }
        Ok((parent, cur))
    }

    /// Replace `parent`'s child pointer `old` with `new` (or the root).
    fn replace_child(
        &self,
        ctx: &mut TxCtx<'_>,
        parent: u32,
        old: u32,
        new: u32,
    ) -> Result<(), TxError> {
        if parent == NIL {
            ctx.write(&self.root, new)?;
        } else if ctx.read(&self.nodes[parent as usize].left)? == old {
            ctx.write(&self.nodes[parent as usize].left, new)?;
        } else {
            ctx.write(&self.nodes[parent as usize].right, new)?;
        }
        Ok(())
    }
}

impl Default for TxTreeSet {
    fn default() -> Self {
        Self::new()
    }
}

impl TxSet for TxTreeSet {
    fn insert(&self, th: &ThreadHandle, key: u64) -> bool {
        debug_assert!(key < KEY_SPACE);
        th.tx(&self.lock).run(|ctx| {
            let (parent, cur) = self.locate(ctx, key)?;
            if cur != NIL {
                ctx.no_quiesce();
                return Ok(false);
            }
            let n = self.alloc(ctx)?;
            ctx.write(&self.nodes[n as usize].key, key)?;
            ctx.write(&self.nodes[n as usize].left, NIL)?;
            ctx.write(&self.nodes[n as usize].right, NIL)?;
            if parent == NIL {
                ctx.write(&self.root, n)?;
            } else {
                let pk = ctx.read(&self.nodes[parent as usize].key)?;
                if key < pk {
                    ctx.write(&self.nodes[parent as usize].left, n)?;
                } else {
                    ctx.write(&self.nodes[parent as usize].right, n)?;
                }
            }
            ctx.no_quiesce();
            Ok(true)
        })
    }

    fn remove(&self, th: &ThreadHandle, key: u64) -> bool {
        debug_assert!(key < KEY_SPACE);
        th.tx(&self.lock).run(|ctx| {
            let (parent, cur) = self.locate(ctx, key)?;
            if cur == NIL {
                ctx.no_quiesce();
                return Ok(false);
            }
            let left = ctx.read(&self.nodes[cur as usize].left)?;
            let right = ctx.read(&self.nodes[cur as usize].right)?;
            if left == NIL || right == NIL {
                // Zero or one child: splice out.
                let child = if left == NIL { right } else { left };
                self.replace_child(ctx, parent, cur, child)?;
                self.release(ctx, cur)?;
            } else {
                // Two children: pull up the in-order successor's key, then
                // splice the successor (which has no left child).
                let mut sp = cur;
                let mut s = right;
                loop {
                    let sl = ctx.read(&self.nodes[s as usize].left)?;
                    if sl == NIL {
                        break;
                    }
                    sp = s;
                    s = sl;
                }
                let sk = ctx.read(&self.nodes[s as usize].key)?;
                ctx.write(&self.nodes[cur as usize].key, sk)?;
                let sr = ctx.read(&self.nodes[s as usize].right)?;
                if sp == cur {
                    ctx.write(&self.nodes[cur as usize].right, sr)?;
                } else {
                    ctx.write(&self.nodes[sp as usize].left, sr)?;
                }
                self.release(ctx, s)?;
            }
            ctx.will_free_memory();
            Ok(true)
        })
    }

    fn contains(&self, th: &ThreadHandle, key: u64) -> bool {
        debug_assert!(key < KEY_SPACE);
        th.tx(&self.lock).run(|ctx| {
            let (_, cur) = self.locate(ctx, key)?;
            ctx.no_quiesce();
            Ok(cur != NIL)
        })
    }

    fn len_direct(&self) -> usize {
        fn walk(nodes: &[Node], idx: u32, lo: i64, hi: i64, seen: &mut usize) {
            if idx == NIL {
                return;
            }
            *seen += 1;
            assert!(*seen <= POOL, "cycle detected in tree");
            let k = nodes[idx as usize].key.load_direct() as i64;
            assert!(
                lo < k + 1 && k < hi,
                "BST order violated: {k} outside ({lo},{hi})"
            );
            walk(nodes, nodes[idx as usize].left.load_direct(), lo, k, seen);
            walk(nodes, nodes[idx as usize].right.load_direct(), k, hi, seen);
        }
        let mut n = 0;
        walk(
            &self.nodes,
            self.root.load_direct(),
            i64::MIN,
            i64::MAX,
            &mut n,
        );
        n
    }

    fn key_space(&self) -> u64 {
        KEY_SPACE
    }

    fn name(&self) -> &'static str {
        "tree"
    }
}

impl TxTreeSet {
    /// Test helper: in-order keys (asserts BST order via `len_direct`).
    pub fn collect_direct(&self) -> Vec<u64> {
        fn walk(nodes: &[Node], idx: u32, out: &mut Vec<u64>) {
            if idx == NIL {
                return;
            }
            walk(nodes, nodes[idx as usize].left.load_direct(), out);
            out.push(nodes[idx as usize].key.load_direct());
            walk(nodes, nodes[idx as usize].right.load_direct(), out);
        }
        let _ = self.len_direct();
        let mut out = Vec::new();
        walk(&self.nodes, self.root.load_direct(), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use std::sync::Arc;
    use tle_core::{AlgoMode, TmSystem};

    fn sys_th() -> (Arc<TmSystem>, ThreadHandle) {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        (sys, th)
    }

    #[test]
    fn insert_builds_ordered_tree() {
        let (_sys, th) = sys_th();
        let s = TxTreeSet::new();
        for k in [50u64, 20, 80, 10, 30, 70, 90, 25, 35] {
            assert!(s.insert(&th, k));
        }
        assert_eq!(s.collect_direct(), vec![10, 20, 25, 30, 35, 50, 70, 80, 90]);
    }

    #[test]
    fn remove_leaf_one_child_two_children() {
        let (_sys, th) = sys_th();
        let s = TxTreeSet::new();
        for k in [50u64, 20, 80, 10, 30, 25, 35] {
            s.insert(&th, k);
        }
        // Leaf.
        assert!(s.remove(&th, 10));
        assert_eq!(s.collect_direct(), vec![20, 25, 30, 35, 50, 80]);
        // Two children (20 has 25..35 subtree after 10 is gone? 20's left is
        // now NIL, right is 30) -> one child case.
        assert!(s.remove(&th, 20));
        assert_eq!(s.collect_direct(), vec![25, 30, 35, 50, 80]);
        // Root with two children.
        assert!(s.remove(&th, 50));
        assert_eq!(s.collect_direct(), vec![25, 30, 35, 80]);
        // Remove everything.
        for k in [30u64, 25, 80, 35] {
            assert!(s.remove(&th, k));
        }
        assert_eq!(s.len_direct(), 0);
    }

    #[test]
    fn remove_root_repeatedly() {
        let (_sys, th) = sys_th();
        let s = TxTreeSet::new();
        for k in 0..32u64 {
            s.insert(&th, (k * 37) % 256);
        }
        let mut expect = s.collect_direct();
        while let Some(&root_key) = expect.first() {
            assert!(s.remove(&th, root_key));
            expect.remove(0);
            assert_eq!(s.collect_direct(), expect);
        }
    }

    #[test]
    fn successor_key_recycling_is_consistent() {
        // Regression shape: deleting a node whose successor is its direct
        // right child.
        let (_sys, th) = sys_th();
        let s = TxTreeSet::new();
        for k in [10u64, 5, 20, 15, 30] {
            s.insert(&th, k);
        }
        assert!(s.remove(&th, 10)); // successor 15 is grandchild
        assert_eq!(s.collect_direct(), vec![5, 15, 20, 30]);
        assert!(s.remove(&th, 15)); // successor 20 is direct right child
        assert_eq!(s.collect_direct(), vec![5, 20, 30]);
    }

    #[test]
    fn matches_oracle() {
        testutil::oracle_check(&TxTreeSet::new(), 99, 8_000);
    }

    #[test]
    fn concurrent_all_modes() {
        for mode in [
            AlgoMode::Baseline,
            AlgoMode::StmCondvar,
            AlgoMode::StmCondvarNoQuiesce,
            AlgoMode::HtmCondvar,
        ] {
            testutil::concurrent_check(|| Arc::new(TxTreeSet::new()), mode);
        }
    }
}
