//! # tle-txset — the paper's data-structure microbenchmarks
//!
//! §VII-C of the paper studies quiescence overheads on three concurrent set
//! implementations, each protected by a single (elided) lock:
//!
//! - a **list-based set** storing 6-bit keys ([`TxListSet`]) — long
//!   traversals, high conflict probability;
//! - a **hash-based set** storing 8-bit keys ([`TxHashSet`]) — short
//!   disjoint transactions;
//! - a **tree-based set** storing 8-bit keys ([`TxTreeSet`]) — intermediate.
//!
//! All three allocate nodes from **type-stable index-based pools**: nodes
//! are `u32` indices into a fixed slab, the free list is itself
//! transactional state, and a "freed" node is recycled, never deallocated.
//! This is what makes the paper's *NoQ* configuration (globally disabled
//! quiescence) memory-safe to even measure in Rust: a doomed transaction can
//! still read a recycled node's cells — and will abort at its next
//! validation — but can never touch unmapped memory. The paper makes the
//! same point from the other side: GCC's TM-aware allocator *requires*
//! quiescence before memory returns to the OS, which is why even "NoQ"
//! quiesces frees ([`TxCtx::will_free_memory`]).
//!
//! The *SelectNoQ* behaviour (the paper's `TM_NoQuiesce` proposal) is baked
//! into the operations: lookups, failed updates and inserts publish rather
//! than privatize, so they call [`TxCtx::no_quiesce`]; successful removes
//! privatize a node and free it, so they quiesce. Which calls take effect is
//! decided by the system-wide [`QuiescePolicy`](tle_stm::QuiescePolicy).
//!
//! [`TxCtx::will_free_memory`]: tle_core::TxCtx::will_free_memory
//! [`TxCtx::no_quiesce`]: tle_core::TxCtx::no_quiesce

mod hash;
mod list;
mod tree;

pub use hash::TxHashSet;
pub use list::TxListSet;
pub use tree::TxTreeSet;

use tle_core::ThreadHandle;

/// Index value meaning "no node".
pub(crate) const NIL: u32 = u32::MAX;

/// The common interface of the three transactional sets.
pub trait TxSet: Send + Sync {
    /// Insert `key`; returns `true` if the set changed.
    fn insert(&self, th: &ThreadHandle, key: u64) -> bool;
    /// Remove `key`; returns `true` if the set changed.
    fn remove(&self, th: &ThreadHandle, key: u64) -> bool;
    /// Membership test.
    fn contains(&self, th: &ThreadHandle, key: u64) -> bool;
    /// Number of keys (non-concurrent: call only while quiescent).
    fn len_direct(&self) -> usize;
    /// The size of the key universe (keys are `0..key_space()`).
    fn key_space(&self) -> u64;
    /// Structure name for benchmark tables.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Arc;
    use tle_base::rng::XorShift64;
    use tle_core::{AlgoMode, TmSystem};

    /// Sequential oracle check: random ops mirrored against a BTreeSet.
    pub fn oracle_check(set: &dyn TxSet, seed: u64, ops: usize) {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let mut oracle = BTreeSet::new();
        let mut rng = XorShift64::new(seed);
        let space = set.key_space();
        for _ in 0..ops {
            let key = rng.below(space);
            match rng.below(3) {
                0 => assert_eq!(
                    set.insert(&th, key),
                    oracle.insert(key),
                    "insert({key}) disagreed with oracle"
                ),
                1 => assert_eq!(
                    set.remove(&th, key),
                    oracle.remove(&key),
                    "remove({key}) disagreed with oracle"
                ),
                _ => assert_eq!(
                    set.contains(&th, key),
                    oracle.contains(&key),
                    "contains({key}) disagreed with oracle"
                ),
            }
        }
        assert_eq!(set.len_direct(), oracle.len());
    }

    /// Concurrent net-count check: per-key insert/remove deltas must match
    /// final membership.
    pub fn concurrent_check(make: impl Fn() -> Arc<dyn TxSet>, mode: AlgoMode) {
        let set = make();
        let sys = Arc::new(TmSystem::new(mode));
        let threads = 4;
        let ops = 3_000;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let set = Arc::clone(&set);
                let sys = Arc::clone(&sys);
                std::thread::spawn(move || {
                    let th = sys.register();
                    let mut rng = XorShift64::new(0xBEEF ^ t as u64);
                    let space = set.key_space();
                    // net[key] = inserts_won - removes_won by this thread
                    let mut net = vec![0i64; space as usize];
                    for _ in 0..ops {
                        let key = rng.below(space);
                        match rng.below(3) {
                            0 => {
                                if set.insert(&th, key) {
                                    net[key as usize] += 1;
                                }
                            }
                            1 => {
                                if set.remove(&th, key) {
                                    net[key as usize] -= 1;
                                }
                            }
                            _ => {
                                let _ = set.contains(&th, key);
                            }
                        }
                    }
                    net
                })
            })
            .collect();
        let mut net = vec![0i64; set.key_space() as usize];
        for h in handles {
            for (k, d) in h.join().unwrap().into_iter().enumerate() {
                net[k] += d;
            }
        }
        let sys2 = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys2.register();
        for (k, d) in net.iter().enumerate() {
            assert!(
                *d == 0 || *d == 1,
                "key {k} net count {d} is impossible (successful ops must alternate)"
            );
            assert_eq!(
                set.contains(&th, k as u64),
                *d == 1,
                "membership of {k} disagrees with net op count {d} under {mode:?}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tle_core::{AlgoMode, TmSystem};

    #[test]
    fn all_sets_expose_paper_key_spaces() {
        assert_eq!(TxListSet::new().key_space(), 64, "6-bit keys");
        assert_eq!(TxHashSet::new().key_space(), 256, "8-bit keys");
        assert_eq!(TxTreeSet::new().key_space(), 256, "8-bit keys");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(TxListSet::new().name(), "list");
        assert_eq!(TxHashSet::new().name(), "hash");
        assert_eq!(TxTreeSet::new().name(), "tree");
    }

    #[test]
    fn empty_sets_have_no_members() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let sets: [Box<dyn TxSet>; 3] = [
            Box::new(TxListSet::new()),
            Box::new(TxHashSet::new()),
            Box::new(TxTreeSet::new()),
        ];
        for s in &sets {
            assert_eq!(s.len_direct(), 0);
            for k in [0u64, 1, 5, s.key_space() - 1] {
                assert!(!s.contains(&th, k));
                assert!(!s.remove(&th, k));
            }
        }
    }

    #[test]
    fn sets_work_on_norec_backend() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        sys.set_stm_algo(tle_stm::StmAlgo::Norec);
        let th = sys.register();
        let sets: [Box<dyn TxSet>; 3] = [
            Box::new(TxListSet::new()),
            Box::new(TxHashSet::new()),
            Box::new(TxTreeSet::new()),
        ];
        for s in &sets {
            for k in 0..32u64 {
                assert!(s.insert(&th, k));
            }
            for k in (0..32u64).step_by(2) {
                assert!(s.remove(&th, k));
            }
            assert_eq!(s.len_direct(), 16, "{} under NOrec", s.name());
        }
    }
}
