//! The hash-based set: fixed bucket array with per-bucket sorted chains,
//! 8-bit keys, one elided lock. Operations on different buckets touch
//! disjoint memory, so conflicts are rare — the paper's low-contention
//! microbenchmark (Figure 5 c/d).

use crate::{TxSet, NIL};
use tle_base::TCell;
use tle_core::{ElidableMutex, ThreadHandle, TxCtx, TxError};

/// 8-bit keys, per the paper.
const KEY_SPACE: u64 = 256;
const BUCKETS: usize = 64;
const POOL: usize = KEY_SPACE as usize + 128;

struct Node {
    key: TCell<u64>,
    next: TCell<u32>,
}

/// Transactional hash set. See the module docs.
pub struct TxHashSet {
    lock: ElidableMutex,
    buckets: Box<[TCell<u32>]>,
    free: TCell<u32>,
    nodes: Box<[Node]>,
}

impl TxHashSet {
    /// An empty set.
    pub fn new() -> Self {
        let nodes: Box<[Node]> = (0..POOL)
            .map(|i| Node {
                key: TCell::new(0),
                next: TCell::new(if i + 1 < POOL { i as u32 + 1 } else { NIL }),
            })
            .collect();
        TxHashSet {
            lock: ElidableMutex::new("hash-set"),
            buckets: (0..BUCKETS).map(|_| TCell::new(NIL)).collect(),
            free: TCell::new(0),
            nodes,
        }
    }

    #[inline]
    fn bucket_of(key: u64) -> usize {
        // Multiplicative mix so adjacent keys spread.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize & (BUCKETS - 1)
    }

    fn alloc(&self, ctx: &mut TxCtx<'_>) -> Result<u32, TxError> {
        let idx = ctx.read(&self.free)?;
        assert_ne!(idx, NIL, "hash-set node pool exhausted");
        let next = ctx.read(&self.nodes[idx as usize].next)?;
        ctx.write(&self.free, next)?;
        Ok(idx)
    }

    fn release(&self, ctx: &mut TxCtx<'_>, idx: u32) -> Result<(), TxError> {
        let f = ctx.read(&self.free)?;
        ctx.write(&self.nodes[idx as usize].next, f)?;
        ctx.write(&self.free, idx)?;
        Ok(())
    }

    /// `(prev, cur)` within `key`'s bucket chain, first `cur.key >= key`.
    fn locate(&self, ctx: &mut TxCtx<'_>, key: u64) -> Result<(u32, u32), TxError> {
        let b = &self.buckets[Self::bucket_of(key)];
        let mut prev = NIL;
        let mut cur = ctx.read(b)?;
        while cur != NIL {
            let k = ctx.read(&self.nodes[cur as usize].key)?;
            if k >= key {
                break;
            }
            prev = cur;
            cur = ctx.read(&self.nodes[cur as usize].next)?;
        }
        Ok((prev, cur))
    }
}

impl Default for TxHashSet {
    fn default() -> Self {
        Self::new()
    }
}

impl TxSet for TxHashSet {
    fn insert(&self, th: &ThreadHandle, key: u64) -> bool {
        debug_assert!(key < KEY_SPACE);
        th.tx(&self.lock).run(|ctx| {
            let (prev, cur) = self.locate(ctx, key)?;
            if cur != NIL && ctx.read(&self.nodes[cur as usize].key)? == key {
                ctx.no_quiesce();
                return Ok(false);
            }
            let n = self.alloc(ctx)?;
            ctx.write(&self.nodes[n as usize].key, key)?;
            ctx.write(&self.nodes[n as usize].next, cur)?;
            if prev == NIL {
                ctx.write(&self.buckets[Self::bucket_of(key)], n)?;
            } else {
                ctx.write(&self.nodes[prev as usize].next, n)?;
            }
            ctx.no_quiesce();
            Ok(true)
        })
    }

    fn remove(&self, th: &ThreadHandle, key: u64) -> bool {
        debug_assert!(key < KEY_SPACE);
        th.tx(&self.lock).run(|ctx| {
            let (prev, cur) = self.locate(ctx, key)?;
            if cur == NIL || ctx.read(&self.nodes[cur as usize].key)? != key {
                ctx.no_quiesce();
                return Ok(false);
            }
            let next = ctx.read(&self.nodes[cur as usize].next)?;
            if prev == NIL {
                ctx.write(&self.buckets[Self::bucket_of(key)], next)?;
            } else {
                ctx.write(&self.nodes[prev as usize].next, next)?;
            }
            self.release(ctx, cur)?;
            ctx.will_free_memory();
            Ok(true)
        })
    }

    fn contains(&self, th: &ThreadHandle, key: u64) -> bool {
        debug_assert!(key < KEY_SPACE);
        th.tx(&self.lock).run(|ctx| {
            let (_, cur) = self.locate(ctx, key)?;
            ctx.no_quiesce();
            Ok(cur != NIL && ctx.read(&self.nodes[cur as usize].key)? == key)
        })
    }

    fn len_direct(&self) -> usize {
        let mut n = 0;
        for b in self.buckets.iter() {
            let mut cur = b.load_direct();
            while cur != NIL {
                n += 1;
                cur = self.nodes[cur as usize].next.load_direct();
                assert!(n <= POOL, "cycle detected in hash chain");
            }
        }
        n
    }

    fn key_space(&self) -> u64 {
        KEY_SPACE
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use std::sync::Arc;
    use tle_core::{AlgoMode, TmSystem};

    #[test]
    fn bucket_mapping_is_total_and_stable() {
        for k in 0..KEY_SPACE {
            let b = TxHashSet::bucket_of(k);
            assert!(b < BUCKETS);
            assert_eq!(b, TxHashSet::bucket_of(k));
        }
    }

    #[test]
    fn full_key_space_round_trip() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let s = TxHashSet::new();
        for k in 0..KEY_SPACE {
            assert!(s.insert(&th, k));
        }
        assert_eq!(s.len_direct(), KEY_SPACE as usize);
        for k in 0..KEY_SPACE {
            assert!(s.contains(&th, k));
        }
        for k in (0..KEY_SPACE).rev() {
            assert!(s.remove(&th, k));
        }
        assert_eq!(s.len_direct(), 0);
    }

    #[test]
    fn matches_oracle() {
        testutil::oracle_check(&TxHashSet::new(), 7, 8_000);
    }

    #[test]
    fn concurrent_all_modes() {
        for mode in [
            AlgoMode::Baseline,
            AlgoMode::StmCondvar,
            AlgoMode::StmCondvarNoQuiesce,
            AlgoMode::HtmCondvar,
        ] {
            testutil::concurrent_check(|| Arc::new(TxHashSet::new()), mode);
        }
    }
}
