//! The list-based set: a sorted singly-linked list over a 6-bit key space,
//! protected by one elided lock. Long traversals make every operation read
//! a prefix of the list, so concurrent writers conflict often — the paper's
//! high-contention microbenchmark (Figure 5 a/b).

use crate::{TxSet, NIL};
use tle_base::TCell;
use tle_core::{ElidableMutex, ThreadHandle, TxCtx, TxError};

/// 6-bit keys, per the paper.
const KEY_SPACE: u64 = 64;
/// Pool capacity: full key space plus recycling slack.
const POOL: usize = KEY_SPACE as usize + 128;

struct Node {
    key: TCell<u64>,
    next: TCell<u32>,
}

/// Transactional sorted-list set. See the module docs.
pub struct TxListSet {
    lock: ElidableMutex,
    head: TCell<u32>,
    free: TCell<u32>,
    nodes: Box<[Node]>,
}

impl TxListSet {
    /// An empty set with all pool nodes on the free list.
    pub fn new() -> Self {
        let nodes: Box<[Node]> = (0..POOL)
            .map(|i| Node {
                key: TCell::new(0),
                next: TCell::new(if i + 1 < POOL { i as u32 + 1 } else { NIL }),
            })
            .collect();
        TxListSet {
            lock: ElidableMutex::new("list-set"),
            head: TCell::new(NIL),
            free: TCell::new(0),
            nodes,
        }
    }

    fn alloc(&self, ctx: &mut TxCtx<'_>) -> Result<u32, TxError> {
        let idx = ctx.read(&self.free)?;
        assert_ne!(idx, NIL, "list-set node pool exhausted");
        let next = ctx.read(&self.nodes[idx as usize].next)?;
        ctx.write(&self.free, next)?;
        Ok(idx)
    }

    fn release(&self, ctx: &mut TxCtx<'_>, idx: u32) -> Result<(), TxError> {
        let f = ctx.read(&self.free)?;
        ctx.write(&self.nodes[idx as usize].next, f)?;
        ctx.write(&self.free, idx)?;
        Ok(())
    }

    /// Find `(prev, cur)` such that `cur` is the first node with
    /// `node.key >= key` (`NIL` allowed on either side).
    fn locate(&self, ctx: &mut TxCtx<'_>, key: u64) -> Result<(u32, u32), TxError> {
        let mut prev = NIL;
        let mut cur = ctx.read(&self.head)?;
        while cur != NIL {
            let k = ctx.read(&self.nodes[cur as usize].key)?;
            if k >= key {
                break;
            }
            prev = cur;
            cur = ctx.read(&self.nodes[cur as usize].next)?;
        }
        Ok((prev, cur))
    }
}

impl Default for TxListSet {
    fn default() -> Self {
        Self::new()
    }
}

impl TxSet for TxListSet {
    fn insert(&self, th: &ThreadHandle, key: u64) -> bool {
        debug_assert!(key < KEY_SPACE);
        th.tx(&self.lock).run(|ctx| {
            let (prev, cur) = self.locate(ctx, key)?;
            if cur != NIL && ctx.read(&self.nodes[cur as usize].key)? == key {
                // Present: nothing privatized -> no quiescence needed.
                ctx.no_quiesce();
                return Ok(false);
            }
            let n = self.alloc(ctx)?;
            ctx.write(&self.nodes[n as usize].key, key)?;
            ctx.write(&self.nodes[n as usize].next, cur)?;
            if prev == NIL {
                ctx.write(&self.head, n)?;
            } else {
                ctx.write(&self.nodes[prev as usize].next, n)?;
            }
            // Publication, not privatization (paper §IV-B: publication
            // safety holds without the drain).
            ctx.no_quiesce();
            Ok(true)
        })
    }

    fn remove(&self, th: &ThreadHandle, key: u64) -> bool {
        debug_assert!(key < KEY_SPACE);
        th.tx(&self.lock).run(|ctx| {
            let (prev, cur) = self.locate(ctx, key)?;
            if cur == NIL || ctx.read(&self.nodes[cur as usize].key)? != key {
                ctx.no_quiesce();
                return Ok(false);
            }
            let next = ctx.read(&self.nodes[cur as usize].next)?;
            if prev == NIL {
                ctx.write(&self.head, next)?;
            } else {
                ctx.write(&self.nodes[prev as usize].next, next)?;
            }
            self.release(ctx, cur)?;
            // Privatizes (and recycles) the node: must quiesce even under
            // TM_NoQuiesce (allocator-mandated drain).
            ctx.will_free_memory();
            Ok(true)
        })
    }

    fn contains(&self, th: &ThreadHandle, key: u64) -> bool {
        debug_assert!(key < KEY_SPACE);
        th.tx(&self.lock).run(|ctx| {
            let (_, cur) = self.locate(ctx, key)?;
            ctx.no_quiesce();
            Ok(cur != NIL && ctx.read(&self.nodes[cur as usize].key)? == key)
        })
    }

    fn len_direct(&self) -> usize {
        let mut n = 0;
        let mut cur = self.head.load_direct();
        while cur != NIL {
            n += 1;
            cur = self.nodes[cur as usize].next.load_direct();
            assert!(n <= POOL, "cycle detected in list");
        }
        n
    }

    fn key_space(&self) -> u64 {
        KEY_SPACE
    }

    fn name(&self) -> &'static str {
        "list"
    }
}

impl TxListSet {
    /// Test/diagnostic helper: assert sortedness and return the keys.
    pub fn collect_direct(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = self.head.load_direct();
        while cur != NIL {
            out.push(self.nodes[cur as usize].key.load_direct());
            cur = self.nodes[cur as usize].next.load_direct();
        }
        for w in out.windows(2) {
            assert!(w[0] < w[1], "list keys out of order: {:?}", w);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use std::sync::Arc;
    use tle_core::{AlgoMode, TmSystem};

    #[test]
    fn insert_remove_contains_sequential() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let s = TxListSet::new();
        assert!(s.insert(&th, 5));
        assert!(s.insert(&th, 1));
        assert!(s.insert(&th, 9));
        assert!(!s.insert(&th, 5), "duplicate insert must fail");
        assert_eq!(s.collect_direct(), vec![1, 5, 9]);
        assert!(s.contains(&th, 5));
        assert!(!s.contains(&th, 4));
        assert!(s.remove(&th, 5));
        assert!(!s.remove(&th, 5));
        assert_eq!(s.collect_direct(), vec![1, 9]);
    }

    #[test]
    fn boundary_keys() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let s = TxListSet::new();
        assert!(s.insert(&th, 0));
        assert!(s.insert(&th, 63));
        assert!(s.contains(&th, 0));
        assert!(s.contains(&th, 63));
        assert!(s.remove(&th, 0));
        assert_eq!(s.collect_direct(), vec![63]);
    }

    #[test]
    fn nodes_are_recycled() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let s = TxListSet::new();
        for round in 0..50 {
            for k in 0..KEY_SPACE {
                assert!(s.insert(&th, k), "round {round} insert {k}");
            }
            for k in 0..KEY_SPACE {
                assert!(s.remove(&th, k), "round {round} remove {k}");
            }
        }
        assert_eq!(s.len_direct(), 0);
    }

    #[test]
    fn matches_oracle() {
        testutil::oracle_check(&TxListSet::new(), 42, 5_000);
    }

    #[test]
    fn concurrent_all_modes() {
        for mode in [
            AlgoMode::Baseline,
            AlgoMode::StmCondvar,
            AlgoMode::StmCondvarNoQuiesce,
            AlgoMode::HtmCondvar,
        ] {
            testutil::concurrent_check(|| Arc::new(TxListSet::new()), mode);
        }
    }
}
