//! # tle-kv — sharded transactional KV serving workload
//!
//! The proving ground for the deadline/admission plane: a key-value store
//! sharded over N named [`ElidableMutex`]es (each shard a pooled hash map in
//! the `tle-txset` idiom), plus an open-loop request driver with zipfian key
//! skew, hot-key storms and bursty arrivals.
//!
//! The store inherits the paper's central hazard: under the TM modes the
//! shard locks are *erased* (§IV-A), so a serial fallback provoked by one
//! overloaded shard drains and blocks every other shard too. A hot-key
//! storm therefore degrades the whole service, not just the hot shard —
//! exactly the scenario the deadline budget ([`TxHints::with_deadline`])
//! and the admission ladder ([`TmSystemBuilder::admission`]) exist to
//! contain. The driver measures both configurations: requests that fail
//! fast with [`TxError::DeadlineExceeded`] / [`TxError::Overloaded`] versus
//! requests that retry and serialize until they succeed.
//!
//! [`TmSystemBuilder::admission`]: tle_core::TmSystemBuilder::admission
//! [`TxHints::with_deadline`]: tle_core::TxHints::with_deadline

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tle_base::exec::{self, Exec};
use tle_base::rng::XorShift64;
use tle_base::stats::{LatencyHist, LatencyHistSnapshot};
use tle_base::TCell;
use tle_core::{
    AdmissionConfig, AlgoMode, ElidableMutex, ThreadHandle, TmSystem, TxCtx, TxError, TxHints,
};

/// Chain-end sentinel in the node pool.
const NIL: u32 = u32::MAX;

struct Node {
    key: TCell<u64>,
    val: TCell<u64>,
    next: TCell<u32>,
}

/// One shard: a pooled, chained hash map (the `tle-txset` hash-set idiom
/// carrying a value word) behind its own named elidable lock.
pub struct KvShard {
    lock: ElidableMutex,
    buckets: Box<[TCell<u32>]>,
    free: TCell<u32>,
    nodes: Box<[Node]>,
}

impl KvShard {
    fn new(index: usize, key_space: u64) -> Self {
        // Slack beyond the key space so concurrent remove/insert churn
        // cannot exhaust the pool mid-transaction.
        let pool = key_space as usize + 64;
        let buckets = (key_space as usize / 4).next_power_of_two().max(16);
        let nodes: Box<[Node]> = (0..pool)
            .map(|i| Node {
                key: TCell::new(0),
                val: TCell::new(0),
                next: TCell::new(if i + 1 < pool { i as u32 + 1 } else { NIL }),
            })
            .collect();
        KvShard {
            lock: ElidableMutex::new(format!("kv-shard-{index}")),
            buckets: (0..buckets).map(|_| TCell::new(NIL)).collect(),
            free: TCell::new(0),
            nodes,
        }
    }

    /// The shard's lock (adopt it, pin it, or inspect its admission step).
    pub fn lock(&self) -> &ElidableMutex {
        &self.lock
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (self.buckets.len() - 1)
    }

    /// `(prev, cur)` within `key`'s chain, first node with `cur.key >= key`.
    fn locate(&self, ctx: &mut TxCtx<'_>, key: u64) -> Result<(u32, u32), TxError> {
        let b = &self.buckets[self.bucket_of(key)];
        let mut prev = NIL;
        let mut cur = ctx.read(b)?;
        while cur != NIL {
            let k = ctx.read(&self.nodes[cur as usize].key)?;
            if k >= key {
                break;
            }
            prev = cur;
            cur = ctx.read(&self.nodes[cur as usize].next)?;
        }
        Ok((prev, cur))
    }

    /// Transactional lookup; the value when `key` is present.
    pub fn get(&self, ctx: &mut TxCtx<'_>, key: u64) -> Result<Option<u64>, TxError> {
        let (_, cur) = self.locate(ctx, key)?;
        if cur != NIL && ctx.read(&self.nodes[cur as usize].key)? == key {
            let v = ctx.read(&self.nodes[cur as usize].val)?;
            ctx.no_quiesce();
            Ok(Some(v))
        } else {
            ctx.no_quiesce();
            Ok(None)
        }
    }

    /// Transactional insert-or-update; the previous value, if any.
    pub fn put(&self, ctx: &mut TxCtx<'_>, key: u64, val: u64) -> Result<Option<u64>, TxError> {
        let (prev, cur) = self.locate(ctx, key)?;
        if cur != NIL && ctx.read(&self.nodes[cur as usize].key)? == key {
            let old = ctx.read(&self.nodes[cur as usize].val)?;
            ctx.write(&self.nodes[cur as usize].val, val)?;
            ctx.no_quiesce();
            return Ok(Some(old));
        }
        let n = ctx.read(&self.free)?;
        assert_ne!(n, NIL, "kv shard node pool exhausted");
        let free_next = ctx.read(&self.nodes[n as usize].next)?;
        ctx.write(&self.free, free_next)?;
        ctx.write(&self.nodes[n as usize].key, key)?;
        ctx.write(&self.nodes[n as usize].val, val)?;
        ctx.write(&self.nodes[n as usize].next, cur)?;
        if prev == NIL {
            ctx.write(&self.buckets[self.bucket_of(key)], n)?;
        } else {
            ctx.write(&self.nodes[prev as usize].next, n)?;
        }
        ctx.no_quiesce();
        Ok(None)
    }

    /// Transactional removal; the removed value, if any.
    pub fn remove(&self, ctx: &mut TxCtx<'_>, key: u64) -> Result<Option<u64>, TxError> {
        let (prev, cur) = self.locate(ctx, key)?;
        if cur == NIL || ctx.read(&self.nodes[cur as usize].key)? != key {
            ctx.no_quiesce();
            return Ok(None);
        }
        let old = ctx.read(&self.nodes[cur as usize].val)?;
        let next = ctx.read(&self.nodes[cur as usize].next)?;
        if prev == NIL {
            ctx.write(&self.buckets[self.bucket_of(key)], next)?;
        } else {
            ctx.write(&self.nodes[prev as usize].next, next)?;
        }
        let f = ctx.read(&self.free)?;
        ctx.write(&self.nodes[cur as usize].next, f)?;
        ctx.write(&self.free, cur)?;
        ctx.will_free_memory();
        Ok(Some(old))
    }

    /// Non-transactional key count (quiescent diagnostics).
    pub fn len_direct(&self) -> usize {
        let mut n = 0;
        for b in self.buckets.iter() {
            let mut cur = b.load_direct();
            while cur != NIL {
                n += 1;
                cur = self.nodes[cur as usize].next.load_direct();
                assert!(n <= self.nodes.len(), "cycle in kv chain");
            }
        }
        n
    }
}

/// The sharded store: global key `k` lives in shard `k / key_space` under
/// shard-local key `k % key_space`.
pub struct ShardedKv {
    shards: Vec<KvShard>,
    key_space: u64,
}

impl ShardedKv {
    /// `shards` maps, each over `key_space` shard-local keys.
    pub fn new(shards: usize, key_space: u64) -> Self {
        assert!(shards > 0 && key_space > 0);
        ShardedKv {
            shards: (0..shards).map(|i| KvShard::new(i, key_space)).collect(),
            key_space,
        }
    }

    /// The shards (adoption, diagnostics).
    pub fn shards(&self) -> &[KvShard] {
        &self.shards
    }

    /// Shard-local keys per shard.
    pub fn key_space(&self) -> u64 {
        self.key_space
    }

    /// Total keys across all shards.
    pub fn total_keys(&self) -> u64 {
        self.key_space * self.shards.len() as u64
    }

    #[inline]
    fn split(&self, key: u64) -> (&KvShard, u64) {
        let shard = (key / self.key_space) as usize % self.shards.len();
        (&self.shards[shard], key % self.key_space)
    }

    /// Infallible GET (retries/serializes until it commits).
    pub fn get(&self, th: &ThreadHandle, key: u64) -> Option<u64> {
        let (shard, k) = self.split(key);
        th.tx(&shard.lock).run(|ctx| shard.get(ctx, k))
    }

    /// Infallible PUT.
    pub fn put(&self, th: &ThreadHandle, key: u64, val: u64) -> Option<u64> {
        let (shard, k) = self.split(key);
        th.tx(&shard.lock).run(|ctx| shard.put(ctx, k, val))
    }

    /// Infallible DELETE.
    pub fn remove(&self, th: &ThreadHandle, key: u64) -> Option<u64> {
        let (shard, k) = self.split(key);
        th.tx(&shard.lock).run(|ctx| shard.remove(ctx, k))
    }

    /// Deadline-budgeted GET: `Err(DeadlineExceeded)`/`Err(Overloaded)`
    /// when the plane refuses the request.
    pub fn try_get(
        &self,
        th: &ThreadHandle,
        hints: TxHints,
        key: u64,
    ) -> Result<Option<u64>, TxError> {
        let (shard, k) = self.split(key);
        th.tx(&shard.lock)
            .hints(hints)
            .try_run(|ctx| shard.get(ctx, k))
    }

    /// Deadline-budgeted PUT.
    pub fn try_put(
        &self,
        th: &ThreadHandle,
        hints: TxHints,
        key: u64,
        val: u64,
    ) -> Result<Option<u64>, TxError> {
        let (shard, k) = self.split(key);
        th.tx(&shard.lock)
            .hints(hints)
            .try_run(|ctx| shard.put(ctx, k, val))
    }

    /// Infallible GET from an async task: attempts run inside one executor
    /// poll, waits (gate entry, backoff, drains) suspend the task instead
    /// of parking the worker.
    pub async fn get_async(&self, th: &ThreadHandle, key: u64) -> Option<u64> {
        let (shard, k) = self.split(key);
        th.tx(&shard.lock).run_async(|ctx| shard.get(ctx, k)).await
    }

    /// Infallible async PUT.
    pub async fn put_async(&self, th: &ThreadHandle, key: u64, val: u64) -> Option<u64> {
        let (shard, k) = self.split(key);
        th.tx(&shard.lock)
            .run_async(|ctx| shard.put(ctx, k, val))
            .await
    }

    /// Deadline-budgeted async GET.
    pub async fn try_get_async(
        &self,
        th: &ThreadHandle,
        hints: TxHints,
        key: u64,
    ) -> Result<Option<u64>, TxError> {
        let (shard, k) = self.split(key);
        th.tx(&shard.lock)
            .hints(hints)
            .try_run_async(|ctx| shard.get(ctx, k))
            .await
    }

    /// Deadline-budgeted async PUT.
    pub async fn try_put_async(
        &self,
        th: &ThreadHandle,
        hints: TxHints,
        key: u64,
        val: u64,
    ) -> Result<Option<u64>, TxError> {
        let (shard, k) = self.split(key);
        th.tx(&shard.lock)
            .hints(hints)
            .try_run_async(|ctx| shard.put(ctx, k, val))
            .await
    }
}

/// Zipfian sampler over `[0, n)` by inverse-CDF table lookup — deterministic
/// given the caller's RNG, and cheap enough to share one table per run.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Skew `theta` (0 = uniform; 0.99 = the YCSB default).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw one rank (0 = hottest).
    pub fn sample(&self, rng: &mut XorShift64) -> u64 {
        let r = rng.next_f64();
        self.cdf.partition_point(|&c| c < r) as u64
    }
}

/// Hot-key storm shape: for the middle `[start_frac, end_frac)` slice of
/// each thread's schedule, `hot_pct` percent of requests become multi-key
/// writes against the first `hot_keys` keys of shard 0.
#[derive(Debug, Clone, Copy)]
pub struct StormConfig {
    /// Storm window start, as a fraction of each thread's request count.
    pub start_frac: f64,
    /// Storm window end fraction.
    pub end_frac: f64,
    /// Percent of in-window requests redirected at the hot keys.
    pub hot_pct: u32,
    /// Number of distinct hot keys (all in shard 0).
    pub hot_keys: u64,
    /// Keys touched per storm write (larger = longer transactions, more
    /// conflict surface).
    pub touch: u64,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            start_frac: 0.33,
            end_frac: 0.67,
            hot_pct: 60,
            hot_keys: 4,
            touch: 48,
        }
    }
}

/// One driver run's configuration.
#[derive(Debug, Clone, Copy)]
pub struct KvConfig {
    /// Synchronization algorithm for the shard locks.
    pub mode: AlgoMode,
    /// Shard (lock) count.
    pub shards: usize,
    /// Worker threads.
    pub threads: usize,
    /// Requests per thread.
    pub requests: u64,
    /// Shard-local keys per shard.
    pub key_space: u64,
    /// Zipfian skew over the global key space.
    pub zipf_theta: f64,
    /// Percent of (non-storm) requests that are writes.
    pub write_pct: u32,
    /// Open-loop arrivals: requests arrive in bursts of this many...
    pub burst: u64,
    /// ...every `burst * gap_ns` nanoseconds per thread (0 = closed loop).
    pub gap_ns: u64,
    /// The hot-key storm, when enabled.
    pub storm: Option<StormConfig>,
    /// Per-request retry-time budget (the deadline half of the plane).
    pub deadline: Option<Duration>,
    /// Enable the admission controller (the shedding half of the plane).
    pub admission: bool,
    /// RNG seed.
    pub seed: u64,
}

impl KvConfig {
    /// A small smoke-sized run (plane off, no storm).
    pub fn quick() -> Self {
        KvConfig {
            mode: AlgoMode::StmCondvar,
            shards: 8,
            threads: 4,
            requests: 2_000,
            key_space: 256,
            zipf_theta: 0.99,
            write_pct: 30,
            burst: 16,
            gap_ns: 4_000,
            storm: None,
            deadline: None,
            admission: false,
            seed: 42,
        }
    }

    /// Attach the full degradation plane (deadline + admission).
    pub fn with_plane(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self.admission = true;
        self
    }

    /// Attach the default hot-key storm.
    pub fn with_storm(mut self) -> Self {
        self.storm = Some(StormConfig::default());
        self
    }
}

/// Aggregated outcome of one driver run.
#[derive(Debug, Clone)]
pub struct KvReport {
    /// Requests offered by the schedule.
    pub offered: u64,
    /// Requests that committed.
    pub completed: u64,
    /// Requests refused by the admission controller (`Overloaded`).
    pub shed: u64,
    /// Requests that ran out of retry-time budget (`DeadlineExceeded`).
    pub deadline_miss: u64,
    /// Wall-clock seconds for the measured phase.
    pub secs: f64,
    /// Committed requests per second.
    pub goodput_per_sec: f64,
    /// Completed-request sojourn latency (scheduled arrival → commit).
    pub p50_ns: u64,
    /// 99th percentile sojourn latency.
    pub p99_ns: u64,
    /// 99.9th percentile sojourn latency.
    pub p999_ns: u64,
    /// The full latency histogram.
    pub hist: LatencyHistSnapshot,
    /// Highest admission step any shard reached (0 elide, 1 serialize,
    /// 2 shed) — proof the ladder actually engaged.
    pub max_admission_step: u8,
}

impl KvReport {
    /// One-line rendering for CLI output.
    pub fn summary(&self) -> String {
        format!(
            "offered={} completed={} shed={} deadline_miss={} goodput={:.0}/s \
             p50={} p99={} p999={} max_step={}",
            self.offered,
            self.completed,
            self.shed,
            self.deadline_miss,
            self.goodput_per_sec,
            tle_base::stats::fmt_ns(self.p50_ns),
            tle_base::stats::fmt_ns(self.p99_ns),
            tle_base::stats::fmt_ns(self.p999_ns),
            self.max_admission_step,
        )
    }
}

struct DriverShared {
    sys: Arc<TmSystem>,
    store: ShardedKv,
    zipf: Zipf,
    hist: LatencyHist,
    completed: AtomicU64,
    shed: AtomicU64,
    deadline_miss: AtomicU64,
}

/// Build the system a driver run needs (mode + admission from `cfg`).
/// Exposed so harnesses can capture the system's statistics after
/// [`run_driver_on`].
pub fn build_system(cfg: &KvConfig) -> Arc<TmSystem> {
    let mut b = TmSystem::builder().mode(cfg.mode);
    if cfg.admission {
        // The stock shed threshold assumes a deep service pool; a serving
        // shard is overloaded as soon as every worker is piled up on it.
        b = b.admission_config(AdmissionConfig {
            shed_queue_depth: (cfg.threads as u64).max(3),
            recover_queue_depth: 1,
            ..AdmissionConfig::default()
        });
    }
    Arc::new(b.build())
}

/// Run one driver configuration to completion and report.
pub fn run_driver(cfg: &KvConfig) -> KvReport {
    run_driver_on(&build_system(cfg), cfg)
}

/// Build the store on `sys`, adopt its shard locks, preload the full key
/// space (so GETs hit and PUTs are updates), and wrap the run-shared
/// counters. Common front half of every driver flavor.
fn prepare_shared(sys: &Arc<TmSystem>, cfg: &KvConfig) -> Arc<DriverShared> {
    let store = ShardedKv::new(cfg.shards, cfg.key_space);
    for shard in store.shards() {
        sys.adopt_lock(shard.lock());
    }
    {
        let th = sys.register();
        for k in 0..store.total_keys() {
            store.put(&th, k, k);
        }
    }
    Arc::new(DriverShared {
        sys: Arc::clone(sys),
        store,
        zipf: Zipf::new(cfg.shards as u64 * cfg.key_space, cfg.zipf_theta),
        hist: LatencyHist::new(),
        completed: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        deadline_miss: AtomicU64::new(0),
    })
}

/// Fold the run-shared counters into a report. Common back half.
fn finish_report(shared: &DriverShared, offered: u64, secs: f64) -> KvReport {
    let max_admission_step = shared
        .store
        .shards()
        .iter()
        .map(|s| s.lock().admission_high_water() as u8)
        .max()
        .unwrap_or(0);
    let hist = shared.hist.snapshot();
    let completed = shared.completed.load(Ordering::Relaxed);
    KvReport {
        offered,
        completed,
        shed: shared.shed.load(Ordering::Relaxed),
        deadline_miss: shared.deadline_miss.load(Ordering::Relaxed),
        secs,
        goodput_per_sec: completed as f64 / secs,
        p50_ns: hist.quantile_ns(0.50).unwrap_or(0),
        p99_ns: hist.quantile_ns(0.99).unwrap_or(0),
        p999_ns: hist.quantile_ns(0.999).unwrap_or(0),
        hist,
        max_admission_step,
    }
}

/// [`run_driver`] against a caller-built system (see [`build_system`]; the
/// system's mode/admission configuration must match `cfg`).
pub fn run_driver_on(sys: &Arc<TmSystem>, cfg: &KvConfig) -> KvReport {
    assert!(cfg.threads > 0 && cfg.shards > 0 && cfg.requests > 0);
    let shared = prepare_shared(sys, cfg);
    let ctrl = cfg
        .admission
        .then(|| sys.start_controller(Duration::from_micros(500)));

    let t0 = Instant::now();
    let workers: Vec<_> = (0..cfg.threads)
        .map(|tid| {
            let shared = Arc::clone(&shared);
            let cfg = *cfg;
            std::thread::spawn(move || worker(&shared, &cfg, tid, t0))
        })
        .collect();
    for w in workers {
        w.join().expect("kv worker panicked");
    }
    let secs = t0.elapsed().as_secs_f64();
    drop(ctrl);

    finish_report(&shared, cfg.threads as u64 * cfg.requests, secs)
}

fn worker(shared: &DriverShared, cfg: &KvConfig, tid: usize, t0: Instant) {
    let th = shared.sys.register();
    let mut rng = XorShift64::new(cfg.seed ^ (tid as u64).wrapping_mul(0x9E37_79B9));
    let hints = cfg.deadline.map(|d| TxHints::new().with_deadline(d));
    let storm_range = cfg.storm.map(|s| {
        let lo = (s.start_frac * cfg.requests as f64) as u64;
        let hi = (s.end_frac * cfg.requests as f64) as u64;
        (lo, hi, s)
    });
    for i in 0..cfg.requests {
        // Open-loop schedule: bursts of `burst` simultaneous arrivals,
        // spaced so the long-run offered rate is one request per `gap_ns`.
        // Sojourn latency is measured from the *scheduled* arrival, so a
        // service that falls behind accrues the backlog in its tail — no
        // coordinated omission.
        let arrival_ns = if cfg.gap_ns == 0 || cfg.burst == 0 {
            0
        } else {
            (i / cfg.burst) * cfg.burst * cfg.gap_ns
        };
        let arrival = t0 + Duration::from_nanos(arrival_ns);
        let now = Instant::now();
        if arrival > now {
            std::thread::sleep(arrival - now);
        }

        let storm_req = storm_range
            .as_ref()
            .map(|&(lo, hi, s)| i >= lo && i < hi && rng.below(100) < s.hot_pct as u64)
            .unwrap_or(false);

        let outcome = if storm_req {
            let s = storm_range.as_ref().expect("storm_req implies range").2;
            let base = rng.below(s.hot_keys.max(1));
            storm_write(shared, &th, hints, s, base, i)
        } else {
            let key = shared.zipf.sample(&mut rng);
            if rng.below(100) < cfg.write_pct as u64 {
                plain_put(shared, &th, hints, key, i)
            } else {
                plain_get(shared, &th, hints, key)
            }
        };

        match outcome {
            Ok(()) => {
                shared.completed.fetch_add(1, Ordering::Relaxed);
                let lat = Instant::now().saturating_duration_since(arrival);
                shared.hist.record(lat.as_nanos() as u64);
            }
            Err(TxError::Overloaded) => {
                shared.shed.fetch_add(1, Ordering::Relaxed);
            }
            Err(TxError::DeadlineExceeded) => {
                shared.deadline_miss.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => unreachable!("runner surfaced unexpected error {e:?}"),
        }
    }
}

fn plain_get(
    shared: &DriverShared,
    th: &ThreadHandle,
    hints: Option<TxHints>,
    key: u64,
) -> Result<(), TxError> {
    match hints {
        Some(h) => shared.store.try_get(th, h, key).map(|_| ()),
        None => {
            shared.store.get(th, key);
            Ok(())
        }
    }
}

fn plain_put(
    shared: &DriverShared,
    th: &ThreadHandle,
    hints: Option<TxHints>,
    key: u64,
    val: u64,
) -> Result<(), TxError> {
    match hints {
        Some(h) => shared.store.try_put(th, h, key, val).map(|_| ()),
        None => {
            shared.store.put(th, key, val);
            Ok(())
        }
    }
}

/// A storm request: read-modify-write `touch` consecutive hot keys in shard
/// 0 inside one transaction. The wide write set maximizes conflict overlap
/// between concurrent storm requests.
fn storm_write(
    shared: &DriverShared,
    th: &ThreadHandle,
    hints: Option<TxHints>,
    s: StormConfig,
    base: u64,
    val: u64,
) -> Result<(), TxError> {
    let shard = &shared.store.shards()[0];
    let span = shared.store.key_space();
    let body = |ctx: &mut TxCtx<'_>| {
        for j in 0..s.touch {
            let k = (base + j) % span;
            let old = shard.get(ctx, k)?.unwrap_or(0);
            shard.put(ctx, k, old.wrapping_add(val))?;
        }
        Ok(())
    };
    match hints {
        Some(h) => th.tx(shard.lock()).hints(h).try_run(body),
        None => {
            th.tx(shard.lock()).run(body);
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Session mode: many paced logical sessions, few execution resources.
// ---------------------------------------------------------------------------

/// Handles the thread-per-session baseline may register at once. Every
/// [`ThreadHandle`] pins an STM and an HTM slot for its lifetime and the
/// slot tables cap out at [`tle_base::slots::MAX_SLOTS`] (64), so a
/// thousand session threads cannot each own a handle — they check one out
/// of a pool per request instead. The async driver has no such pool: its
/// few worker-bound handles run attempts through transient slot claims.
pub const SESSION_HANDLE_POOL: usize = 48;

/// One session-mode run: `sessions` logical clients, each issuing
/// `requests_per_session` zipf-keyed requests with `think_ns` of idle time
/// before each one (a closed loop with think time). The async driver
/// multiplexes every session onto `workers` executor threads; the
/// thread-per-session baseline spawns one OS thread per session.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Store shape, mode, mix and plane knobs. `threads`, `requests`,
    /// `burst`, `gap_ns` and `storm` are ignored in session mode.
    pub base: KvConfig,
    /// Logical session count.
    pub sessions: usize,
    /// Executor worker threads for the async driver (ignored by the
    /// thread-per-session driver).
    pub workers: usize,
    /// Requests each session issues.
    pub requests_per_session: u64,
    /// Idle think time before every request, in nanoseconds.
    pub think_ns: u64,
}

impl SessionConfig {
    /// A small smoke-sized session run.
    pub fn quick() -> Self {
        SessionConfig {
            base: KvConfig::quick(),
            sessions: 64,
            workers: 4,
            requests_per_session: 20,
            think_ns: 200_000,
        }
    }

    fn offered(&self) -> u64 {
        self.sessions as u64 * self.requests_per_session
    }
}

/// One session's request loop, shared between the async and threaded
/// drivers: sample a key, flip a write coin, dispatch, triage the outcome.
/// Returns what the caller must do with the transactional part.
struct SessionReq {
    key: u64,
    write: bool,
}

impl SessionReq {
    fn draw(shared: &DriverShared, cfg: &SessionConfig, rng: &mut XorShift64) -> Self {
        SessionReq {
            key: shared.zipf.sample(rng),
            write: rng.below(100) < cfg.base.write_pct as u64,
        }
    }
}

fn session_rng(cfg: &SessionConfig, sid: u64) -> XorShift64 {
    XorShift64::new(cfg.base.seed ^ sid.wrapping_mul(0x9E37_79B9) ^ 0x5E55_10D5)
}

fn session_triage(shared: &DriverShared, issued: Instant, outcome: Result<(), TxError>) {
    match outcome {
        Ok(()) => {
            shared.completed.fetch_add(1, Ordering::Relaxed);
            shared.hist.record(issued.elapsed().as_nanos() as u64);
        }
        Err(TxError::Overloaded) => {
            shared.shed.fetch_add(1, Ordering::Relaxed);
        }
        Err(TxError::DeadlineExceeded) => {
            shared.deadline_miss.fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => unreachable!("runner surfaced unexpected error {e:?}"),
    }
}

async fn session_async(shared: &DriverShared, th: &ThreadHandle, cfg: &SessionConfig, sid: u64) {
    let mut rng = session_rng(cfg, sid);
    let hints = cfg.base.deadline.map(|d| TxHints::new().with_deadline(d));
    for _ in 0..cfg.requests_per_session {
        if cfg.think_ns > 0 {
            exec::sleep(Duration::from_nanos(cfg.think_ns)).await;
        }
        let req = SessionReq::draw(shared, cfg, &mut rng);
        let issued = Instant::now();
        let outcome = match (hints, req.write) {
            (Some(h), true) => shared
                .store
                .try_put_async(th, h, req.key, sid)
                .await
                .map(|_| ()),
            (Some(h), false) => shared.store.try_get_async(th, h, req.key).await.map(|_| ()),
            (None, true) => {
                shared.store.put_async(th, req.key, sid).await;
                Ok(())
            }
            (None, false) => {
                shared.store.get_async(th, req.key).await;
                Ok(())
            }
        };
        session_triage(shared, issued, outcome);
    }
}

fn session_thread(
    shared: &DriverShared,
    pool: &Mutex<Vec<ThreadHandle>>,
    cfg: &SessionConfig,
    sid: u64,
) {
    let mut rng = session_rng(cfg, sid);
    let hints = cfg.base.deadline.map(|d| TxHints::new().with_deadline(d));
    for _ in 0..cfg.requests_per_session {
        if cfg.think_ns > 0 {
            std::thread::sleep(Duration::from_nanos(cfg.think_ns));
        }
        let req = SessionReq::draw(shared, cfg, &mut rng);
        let issued = Instant::now();
        // Check a handle out for the duration of one request. Waiting for
        // a free handle is part of the request's service time — that is
        // the cost of pinning per-thread slots, and exactly what the
        // async driver's transient claims avoid.
        let th = loop {
            if let Some(th) = pool.lock().expect("handle pool poisoned").pop() {
                break th;
            }
            std::thread::yield_now();
        };
        let outcome = match (hints, req.write) {
            (Some(h), true) => shared.store.try_put(&th, h, req.key, sid).map(|_| ()),
            (Some(h), false) => shared.store.try_get(&th, h, req.key).map(|_| ()),
            (None, true) => {
                shared.store.put(&th, req.key, sid);
                Ok(())
            }
            (None, false) => {
                shared.store.get(&th, req.key);
                Ok(())
            }
        };
        pool.lock().expect("handle pool poisoned").push(th);
        session_triage(shared, issued, outcome);
    }
}

/// Run the async session driver: `cfg.sessions` logical sessions as
/// executor tasks multiplexed onto `cfg.workers` OS threads. Each worker
/// shares one registered [`ThreadHandle`] across all sessions scheduled on
/// the executor — the async runner claims transient slot pairs per
/// attempt, so concurrent sessions never fight over a handle.
pub fn run_session_driver_async(cfg: &SessionConfig) -> KvReport {
    run_session_driver_async_on(&build_system(&cfg.base), cfg)
}

/// [`run_session_driver_async`] against a caller-built system.
pub fn run_session_driver_async_on(sys: &Arc<TmSystem>, cfg: &SessionConfig) -> KvReport {
    assert!(cfg.sessions > 0 && cfg.workers > 0 && cfg.requests_per_session > 0);
    let shared = prepare_shared(sys, &cfg.base);
    let ctrl = cfg
        .base
        .admission
        .then(|| sys.start_controller(Duration::from_micros(500)));

    let exec = Exec::new(cfg.workers);
    let handles: Vec<Arc<ThreadHandle>> =
        (0..cfg.workers).map(|_| Arc::new(sys.register())).collect();

    let t0 = Instant::now();
    let joins: Vec<_> = (0..cfg.sessions)
        .map(|sid| {
            let shared = Arc::clone(&shared);
            let th = Arc::clone(&handles[sid % handles.len()]);
            let cfg = *cfg;
            exec.spawn(async move { session_async(&shared, &th, &cfg, sid as u64).await })
        })
        .collect();
    exec.block_on(async move {
        for j in joins {
            j.await;
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    drop(ctrl);

    finish_report(&shared, cfg.offered(), secs)
}

/// Run the thread-per-session baseline: one OS thread per logical session,
/// sharing [`SESSION_HANDLE_POOL`] registered handles through a checkout
/// pool (the slot tables cannot seat a handle per session).
pub fn run_session_driver_threads(cfg: &SessionConfig) -> KvReport {
    run_session_driver_threads_on(&build_system(&cfg.base), cfg)
}

/// [`run_session_driver_threads`] against a caller-built system.
pub fn run_session_driver_threads_on(sys: &Arc<TmSystem>, cfg: &SessionConfig) -> KvReport {
    assert!(cfg.sessions > 0 && cfg.requests_per_session > 0);
    let shared = prepare_shared(sys, &cfg.base);
    let ctrl = cfg
        .base
        .admission
        .then(|| sys.start_controller(Duration::from_micros(500)));

    let pool_size = cfg.sessions.min(SESSION_HANDLE_POOL);
    let pool = Arc::new(Mutex::new(
        (0..pool_size).map(|_| sys.register()).collect::<Vec<_>>(),
    ));

    let t0 = Instant::now();
    let threads: Vec<_> = (0..cfg.sessions)
        .map(|sid| {
            let shared = Arc::clone(&shared);
            let pool = Arc::clone(&pool);
            let cfg = *cfg;
            std::thread::spawn(move || session_thread(&shared, &pool, &cfg, sid as u64))
        })
        .collect();
    for t in threads {
        t.join().expect("session thread panicked");
    }
    let secs = t0.elapsed().as_secs_f64();
    drop(ctrl);

    finish_report(&shared, cfg.offered(), secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_roundtrip() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let kv = ShardedKv::new(4, 64);
        for k in 0..kv.total_keys() {
            assert_eq!(kv.put(&th, k, k * 3), None);
        }
        for k in 0..kv.total_keys() {
            assert_eq!(kv.get(&th, k), Some(k * 3));
        }
        assert_eq!(kv.put(&th, 7, 99), Some(21));
        assert_eq!(kv.remove(&th, 7), Some(99));
        assert_eq!(kv.get(&th, 7), None);
        assert_eq!(kv.remove(&th, 7), None);
        let n: usize = kv.shards().iter().map(|s| s.len_direct()).sum();
        assert_eq!(n, kv.total_keys() as usize - 1);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let kv = Arc::new(ShardedKv::new(2, 32));
        {
            let th = sys.register();
            kv.put(&th, 0, 0);
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let sys = Arc::clone(&sys);
                let kv = Arc::clone(&kv);
                std::thread::spawn(move || {
                    let th = sys.register();
                    let (shard, k) = kv.split(0);
                    for _ in 0..1_000 {
                        th.tx(shard.lock()).run(|ctx| {
                            let v = shard.get(ctx, k)?.expect("preloaded");
                            shard.put(ctx, k, v + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let th = sys.register();
        assert_eq!(kv.get(&th, 0), Some(4_000));
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(100, 0.99);
        let mut rng = XorShift64::new(7);
        let mut counts = [0u64; 100];
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!(k < 100);
            counts[k as usize] += 1;
        }
        assert!(
            counts[0] > counts[50].max(1) * 5,
            "rank 0 not hot: {} vs {}",
            counts[0],
            counts[50]
        );
        // Uniform (theta 0) spreads.
        let u = Zipf::new(100, 0.0);
        let mut hit = 0;
        for _ in 0..1_000 {
            if u.sample(&mut rng) >= 50 {
                hit += 1;
            }
        }
        assert!(hit > 300, "theta=0 should be near-uniform, got {hit}/1000");
    }

    #[test]
    fn driver_smoke_no_plane() {
        let cfg = KvConfig {
            requests: 300,
            threads: 2,
            gap_ns: 0,
            ..KvConfig::quick()
        };
        let r = run_driver(&cfg);
        assert_eq!(r.offered, 600);
        assert_eq!(r.completed, 600);
        assert_eq!(r.shed + r.deadline_miss, 0);
        assert!(r.p50_ns > 0);
    }

    #[test]
    fn async_session_driver_completes_everything() {
        let cfg = SessionConfig {
            sessions: 96,
            workers: 3,
            requests_per_session: 12,
            think_ns: 20_000,
            ..SessionConfig::quick()
        };
        let r = run_session_driver_async(&cfg);
        assert_eq!(r.offered, 96 * 12);
        assert_eq!(r.completed, r.offered);
        assert_eq!(r.shed + r.deadline_miss, 0);
        assert!(r.p50_ns > 0);
    }

    #[test]
    fn thread_session_driver_pools_handles() {
        // More sessions than the handle pool: checkout contention must not
        // lose requests or leak handles.
        let cfg = SessionConfig {
            sessions: SESSION_HANDLE_POOL + 16,
            requests_per_session: 8,
            think_ns: 5_000,
            ..SessionConfig::quick()
        };
        let r = run_session_driver_threads(&cfg);
        assert_eq!(r.completed, r.offered);
    }

    #[test]
    fn async_sessions_see_threaded_writes() {
        // The two drivers target the same store semantics: a threaded run
        // followed by an async run over one system keeps counts exact.
        let cfg = SessionConfig {
            sessions: 40,
            workers: 2,
            requests_per_session: 10,
            think_ns: 0,
            base: KvConfig {
                write_pct: 100,
                ..KvConfig::quick()
            },
            ..SessionConfig::quick()
        };
        let sys = build_system(&cfg.base);
        let a = run_session_driver_threads_on(&sys, &cfg);
        let b = run_session_driver_async_on(&sys, &cfg);
        assert_eq!(a.completed + b.completed, 2 * cfg.offered());
    }

    #[test]
    fn async_session_driver_with_plane_accounts_for_everything() {
        let cfg = SessionConfig {
            sessions: 48,
            workers: 4,
            requests_per_session: 10,
            think_ns: 0,
            base: KvConfig::quick().with_plane(Duration::from_millis(5)),
        };
        let r = run_session_driver_async(&cfg);
        assert_eq!(r.completed + r.shed + r.deadline_miss, r.offered);
    }

    #[test]
    fn driver_smoke_with_plane_and_storm() {
        let cfg = KvConfig {
            requests: 400,
            threads: 4,
            gap_ns: 0,
            ..KvConfig::quick()
        }
        .with_plane(Duration::from_millis(5))
        .with_storm();
        let r = run_driver(&cfg);
        assert_eq!(r.offered, 1_600);
        assert_eq!(r.completed + r.shed + r.deadline_miss, r.offered);
        // Every outcome is accounted for; the plane may or may not have
        // fired at this size, so no assertion on shed counts here.
    }
}
