//! Motion estimation: SAD block matching against the reconstructed
//! reference frame, with a small diamond refinement around a predicted
//! vector — a miniature of x265's motion search (whose shared predictor
//! state is what the "parallel motion estimation" lock protects).

use crate::frame::{Frame, ReconFrame, CTU};

/// A motion vector in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mv {
    pub x: i32,
    pub y: i32,
}

impl Mv {
    /// Pack into a word for storage in a `TCell` (see the encoder's MV
    /// predictor map).
    pub fn pack(self) -> u64 {
        ((self.x as u32 as u64) << 32) | self.y as u32 as u64
    }

    /// Unpack from [`Mv::pack`].
    pub fn unpack(w: u64) -> Self {
        Mv {
            x: (w >> 32) as u32 as i32,
            y: w as u32 as i32,
        }
    }
}

/// Search window half-width in pixels.
pub const SEARCH_RANGE: i32 = 8;

/// SAD between a CTU of `cur` at (bx, by) and `reference` displaced by `mv`.
/// Out-of-frame displacements cost `u64::MAX` (never chosen).
pub fn block_sad(cur: &Frame, reference: &ReconFrame, bx: usize, by: usize, mv: Mv) -> u64 {
    let rx = bx as i32 + mv.x;
    let ry = by as i32 + mv.y;
    if rx < 0
        || ry < 0
        || rx + CTU as i32 > reference.width() as i32
        || ry + CTU as i32 > reference.height() as i32
    {
        return u64::MAX;
    }
    let mut sad = 0u64;
    for dy in 0..CTU {
        for dx in 0..CTU {
            let a = cur.px(bx + dx, by + dy) as i64;
            let b = reference.px((rx as usize) + dx, (ry as usize) + dy) as i64;
            sad += (a - b).unsigned_abs();
        }
    }
    sad
}

/// Find the best motion vector for the CTU at (bx, by): evaluate the
/// predictor and zero vector, then refine with a diamond pattern.
pub fn search(cur: &Frame, reference: &ReconFrame, bx: usize, by: usize, pred: Mv) -> (Mv, u64) {
    let mut best = Mv::default();
    let mut best_cost = block_sad(cur, reference, bx, by, best);
    let pred_cost = block_sad(cur, reference, bx, by, pred);
    if pred_cost < best_cost {
        best = pred;
        best_cost = pred_cost;
    }
    // Coarse grid scan over the window (stride 3), so the refinement
    // cannot be trapped far from the optimum on rough SAD landscapes.
    let mut gy = -SEARCH_RANGE;
    while gy <= SEARCH_RANGE {
        let mut gx = -SEARCH_RANGE;
        while gx <= SEARCH_RANGE {
            let cand = Mv { x: gx, y: gy };
            let c = block_sad(cur, reference, bx, by, cand);
            if c < best_cost {
                best = cand;
                best_cost = c;
            }
            gx += 3;
        }
        gy += 3;
    }
    // Large-diamond refinement until no improvement, then small diamond.
    let large = [
        (2i32, 0i32),
        (-2, 0),
        (0, 2),
        (0, -2),
        (1, 1),
        (1, -1),
        (-1, 1),
        (-1, -1),
    ];
    let small = [(1i32, 0i32), (-1, 0), (0, 1), (0, -1)];
    for pattern in [&large[..], &small[..]] {
        loop {
            let mut improved = false;
            for &(dx, dy) in pattern {
                let cand = Mv {
                    x: (best.x + dx).clamp(-SEARCH_RANGE, SEARCH_RANGE),
                    y: (best.y + dy).clamp(-SEARCH_RANGE, SEARCH_RANGE),
                };
                if cand == best {
                    continue;
                }
                let c = block_sad(cur, reference, bx, by, cand);
                if c < best_cost {
                    best = cand;
                    best_cost = c;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
    }
    (best, best_cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recon_from(f: &Frame) -> ReconFrame {
        let r = ReconFrame::new(f.width(), f.height());
        for y in 0..f.height() {
            for x in 0..f.width() {
                r.set_px(x, y, f.px(x, y));
            }
        }
        r
    }

    /// Locally smooth texture (like real video): gradients guide the
    /// search, unlike white noise whose SAD landscape has no basin.
    fn textured_frame(w: usize, h: usize) -> Frame {
        let mut f = Frame::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let v = 128.0
                    + 60.0 * (x as f64 * 0.31).sin()
                    + 40.0 * (y as f64 * 0.23).cos()
                    + 20.0 * ((x + y) as f64 * 0.11).sin();
                *f.px_mut(x, y) = v.clamp(0.0, 255.0) as u8;
            }
        }
        f
    }

    #[test]
    fn mv_pack_roundtrip() {
        for mv in [
            Mv { x: 0, y: 0 },
            Mv { x: -8, y: 8 },
            Mv { x: 5, y: -3 },
            Mv {
                x: i32::MIN,
                y: i32::MAX,
            },
        ] {
            assert_eq!(Mv::unpack(mv.pack()), mv);
        }
    }

    #[test]
    fn identical_frames_give_zero_mv_zero_cost() {
        let f = textured_frame(64, 64);
        let r = recon_from(&f);
        let (mv, cost) = search(&f, &r, 16, 16, Mv::default());
        assert_eq!(cost, 0);
        assert_eq!(mv, Mv::default());
    }

    #[test]
    fn finds_known_shift() {
        // Current frame = reference shifted right by 3 pixels.
        let base = textured_frame(96, 64);
        let r = recon_from(&base);
        let mut cur = Frame::new(96, 64);
        for y in 0..64 {
            for x in 0..96 {
                let sx = (x as i32 - 3).clamp(0, 95) as usize;
                *cur.px_mut(x, y) = base.px(sx, y);
            }
        }
        // Interior block so the shift is exact within the window.
        let (mv, cost) = search(&cur, &r, 32, 16, Mv::default());
        assert_eq!(
            (mv.x, mv.y),
            (-3, 0),
            "should find the 3px shift, cost {cost}"
        );
        assert_eq!(cost, 0);
    }

    #[test]
    fn predictor_accelerates_but_never_hurts() {
        let base = textured_frame(96, 64);
        let r = recon_from(&base);
        let mut cur = Frame::new(96, 64);
        for y in 0..64 {
            for x in 0..96 {
                let sx = (x as i32 - 5).rem_euclid(96) as usize;
                *cur.px_mut(x, y) = base.px(sx, y);
            }
        }
        let (_, cost_no_pred) = search(&cur, &r, 32, 32, Mv::default());
        let (_, cost_pred) = search(&cur, &r, 32, 32, Mv { x: -5, y: 0 });
        assert!(cost_pred <= cost_no_pred);
        assert_eq!(cost_pred, 0);
    }

    #[test]
    fn out_of_frame_is_never_chosen() {
        let f = textured_frame(32, 32);
        let r = recon_from(&f);
        // Corner block: many candidate vectors fall outside.
        let (mv, cost) = search(&f, &r, 0, 0, Mv { x: -8, y: -8 });
        assert!(cost < u64::MAX);
        assert!(mv.x >= 0 && mv.y >= 0 || cost == 0);
    }
}
