//! CTU encoding: intra/inter prediction, residual transform, quantization,
//! reconstruction, and a deterministic coded representation.
//!
//! This is the compute each wavefront task performs — the x265 work that
//! runs *between* the elided critical sections. The data dependency that
//! makes WPP non-trivial is real here: intra prediction reads
//! *reconstructed* neighbour pixels, which only exist after the left and
//! top-right CTUs finished.

use crate::frame::{Frame, ReconFrame, CTU};
use crate::motion::{self, Mv};
use crate::transform::{dequantize, fwht8x8, iwht8x8, quantize, TB};

/// How a CTU was predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredMode {
    /// DC intra prediction from reconstructed neighbours.
    IntraDc,
    /// Motion-compensated from the reference frame.
    Inter(Mv),
}

/// The coded output of one CTU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodedCtu {
    /// Prediction decision.
    pub mode: PredMode,
    /// Quantized transform levels, 4 transform blocks in raster order.
    pub levels: Vec<i32>,
    /// Non-zero level count (bit-cost proxy).
    pub nonzero: u32,
}

impl CodedCtu {
    /// Serialized size proxy in "bits" (mode + per-level cost), the number
    /// the encoder's cost lock accumulates.
    pub fn cost_bits(&self) -> u64 {
        let mode_bits = match self.mode {
            PredMode::IntraDc => 2,
            PredMode::Inter(_) => 10,
        };
        let level_bits: u64 = self
            .levels
            .iter()
            .map(|&l| 1 + 2 * (64 - (l.unsigned_abs() as u64 + 1).leading_zeros() as u64))
            .sum();
        mode_bits + level_bits
    }
}

/// Build the DC intra prediction for the CTU at (bx, by) from reconstructed
/// neighbours (top row and left column), defaulting to 128 at frame and
/// slice edges (`top_floor_px` = first pixel row of the enclosing slice —
/// slices predict independently, which is what makes them parallel).
fn intra_dc(recon: &ReconFrame, bx: usize, by: usize, top_floor_px: usize) -> u8 {
    let mut sum = 0u32;
    let mut n = 0u32;
    if by > top_floor_px {
        for dx in 0..CTU {
            sum += recon.px(bx + dx, by - 1) as u32;
            n += 1;
        }
    }
    if bx > 0 {
        for dy in 0..CTU {
            sum += recon.px(bx - 1, by + dy) as u32;
            n += 1;
        }
    }
    match (sum + n / 2).checked_div(n) {
        None => 128,
        Some(avg) => avg as u8,
    }
}

/// Encode the CTU at grid position (`cx`, `cy`): choose a predictor,
/// transform/quantize the residual, write the reconstruction into `recon`,
/// and return the coded form. `reference` is the previous reconstructed
/// frame (None for intra-only frames); `mv_pred` seeds the motion search.
pub fn encode_ctu(
    cur: &Frame,
    recon: &ReconFrame,
    reference: Option<&ReconFrame>,
    cx: usize,
    cy: usize,
    qp: u8,
    mv_pred: Mv,
) -> CodedCtu {
    encode_ctu_sliced(cur, recon, reference, cx, cy, qp, mv_pred, 0)
}

/// [`encode_ctu`] with an explicit slice boundary: `slice_top_row` is the
/// first CTU row of the enclosing slice; intra prediction never reads
/// above it.
#[allow(clippy::too_many_arguments)]
pub fn encode_ctu_sliced(
    cur: &Frame,
    recon: &ReconFrame,
    reference: Option<&ReconFrame>,
    cx: usize,
    cy: usize,
    qp: u8,
    mv_pred: Mv,
    slice_top_row: usize,
) -> CodedCtu {
    let bx = cx * CTU;
    let by = cy * CTU;

    // Candidate 1: intra DC (bounded by the slice).
    let dc = intra_dc(recon, bx, by, slice_top_row * CTU);
    let intra_sad: u64 = (0..CTU)
        .flat_map(|dy| (0..CTU).map(move |dx| (dx, dy)))
        .map(|(dx, dy)| (cur.px(bx + dx, by + dy) as i64 - dc as i64).unsigned_abs())
        .sum();

    // Candidate 2: motion compensation.
    let inter = reference.map(|r| motion::search(cur, r, bx, by, mv_pred));

    let (mode, pred_px): (PredMode, Box<dyn Fn(usize, usize) -> u8>) = match inter {
        Some((mv, cost)) if cost < intra_sad => {
            let r = reference.unwrap();
            let rx = (bx as i32 + mv.x) as usize;
            let ry = (by as i32 + mv.y) as usize;
            (
                PredMode::Inter(mv),
                Box::new(move |dx, dy| r.px(rx + dx, ry + dy)),
            )
        }
        _ => (PredMode::IntraDc, Box::new(move |_, _| dc)),
    };

    // Residual -> 4 transform blocks -> quantize -> reconstruct.
    let mut levels = Vec::with_capacity(4 * TB * TB);
    let mut nonzero = 0u32;
    for tby in 0..CTU / TB {
        for tbx in 0..CTU / TB {
            let mut block = [0i32; TB * TB];
            for dy in 0..TB {
                for dx in 0..TB {
                    let x = tbx * TB + dx;
                    let y = tby * TB + dy;
                    block[dy * TB + dx] = cur.px(bx + x, by + y) as i32 - pred_px(x, y) as i32;
                }
            }
            let mut coefs = fwht8x8(&block);
            nonzero += quantize(&mut coefs, qp);
            levels.extend_from_slice(&coefs);
            // Reconstruct.
            dequantize(&mut coefs, qp);
            let rec = iwht8x8(&coefs);
            for dy in 0..TB {
                for dx in 0..TB {
                    let x = tbx * TB + dx;
                    let y = tby * TB + dy;
                    let v = (pred_px(x, y) as i32 + rec[dy * TB + dx]).clamp(0, 255) as u8;
                    recon.set_px(bx + x, by + y, v);
                }
            }
        }
    }
    CodedCtu {
        mode,
        levels,
        nonzero,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VideoSource;

    #[test]
    fn qp0_reconstruction_is_lossless() {
        let src = VideoSource::new(64, 32, 1, 4);
        let f = src.frame(0);
        let recon = ReconFrame::new(64, 32);
        // Encode in wavefront-legal order (row by row works too).
        for cy in 0..f.ctu_rows() {
            for cx in 0..f.ctu_cols() {
                encode_ctu(&f, &recon, None, cx, cy, 0, Mv::default());
            }
        }
        assert_eq!(recon.freeze(), f, "QP 0 must reconstruct exactly");
    }

    #[test]
    fn higher_qp_degrades_quality_and_cost() {
        let src = VideoSource::new(64, 64, 1, 4);
        let f = src.frame(0);
        let mut prev_psnr = f64::INFINITY;
        let mut prev_bits = u64::MAX;
        for qp in [0u8, 12, 24] {
            let recon = ReconFrame::new(64, 64);
            let mut bits = 0u64;
            for cy in 0..f.ctu_rows() {
                for cx in 0..f.ctu_cols() {
                    bits += encode_ctu(&f, &recon, None, cx, cy, qp, Mv::default()).cost_bits();
                }
            }
            let psnr = recon.freeze().psnr(&f);
            assert!(psnr <= prev_psnr, "qp {qp}: psnr increased");
            assert!(bits <= prev_bits, "qp {qp}: bits increased");
            prev_psnr = psnr;
            prev_bits = bits;
        }
    }

    #[test]
    fn inter_prediction_chosen_for_static_content() {
        let src = VideoSource::new(64, 32, 2, 4);
        let f0 = src.frame(0);
        // Reference = perfectly reconstructed frame 0.
        let r0 = ReconFrame::new(64, 32);
        for y in 0..32 {
            for x in 0..64 {
                r0.set_px(x, y, f0.px(x, y));
            }
        }
        // Encoding frame 0 again with itself as reference: inter wins with
        // zero MV everywhere.
        let recon = ReconFrame::new(64, 32);
        for cy in 0..f0.ctu_rows() {
            for cx in 0..f0.ctu_cols() {
                let c = encode_ctu(&f0, &recon, Some(&r0), cx, cy, 12, Mv::default());
                assert_eq!(c.mode, PredMode::Inter(Mv::default()), "CTU ({cx},{cy})");
                assert_eq!(c.nonzero, 0, "zero residual expected");
            }
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let src = VideoSource::new(64, 32, 1, 9);
        let f = src.frame(0);
        let run = || {
            let recon = ReconFrame::new(64, 32);
            let mut out = Vec::new();
            for cy in 0..f.ctu_rows() {
                for cx in 0..f.ctu_cols() {
                    out.push(encode_ctu(&f, &recon, None, cx, cy, 18, Mv::default()));
                }
            }
            (out, recon.freeze())
        };
        let (a, ra) = run();
        let (b, rb) = run();
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn cost_bits_monotone_in_levels() {
        let small = CodedCtu {
            mode: PredMode::IntraDc,
            levels: vec![0; 256],
            nonzero: 0,
        };
        let big = CodedCtu {
            mode: PredMode::IntraDc,
            levels: vec![100; 256],
            nonzero: 256,
        };
        assert!(small.cost_bits() < big.cost_bits());
    }
}
