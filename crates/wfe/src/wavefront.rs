//! Wavefront parallel processing (WPP) — Figure 1 of the paper.
//!
//! CTU (r, c) may start once CTU (r, c-1) is done (same worker, implicit)
//! and CTU (r-1, c+1) is done (cross-thread). Cross-row progress is
//! tracked in per-row counters guarded by the **CTURows lock** and its
//! condition variable; in x265 this is exactly the communication path "from
//! a completed CTU to the CTUs that depend on it".

use tle_base::TCell;
use tle_core::{ElidableMutex, ThreadHandle, TxCondvar};

/// Per-frame wavefront progress state.
pub struct Wavefront {
    /// The "CTURows" lock.
    rows_lock: ElidableMutex,
    progress_cv: TxCondvar,
    /// progress[r] = number of CTUs of row r completed.
    progress: Vec<TCell<u32>>,
    cols: u32,
}

impl Wavefront {
    /// Fresh progress state for a `rows` × `cols` CTU grid.
    pub fn new(rows: usize, cols: usize) -> Self {
        Wavefront {
            rows_lock: ElidableMutex::new("CTURows"),
            progress_cv: TxCondvar::new(),
            progress: (0..rows).map(|_| TCell::new(0)).collect(),
            cols: cols as u32,
        }
    }

    /// The "CTURows" elidable lock, for per-lock policy adoption
    /// ([`TmSystem::adopt_lock`]).
    ///
    /// [`TmSystem::adopt_lock`]: tle_core::TmSystem::adopt_lock
    pub fn lock(&self) -> &ElidableMutex {
        &self.rows_lock
    }

    /// Grid columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.progress.len()
    }

    /// Block until CTU (`row`, `col`) is allowed to start: the top-right
    /// neighbour (row-1, col+1) — or the end of the upper row — must have
    /// completed.
    pub fn wait_for_deps(&self, th: &ThreadHandle, row: usize, col: u32) {
        if row == 0 {
            return;
        }
        let need = (col + 2).min(self.cols);
        th.tx(&self.rows_lock).run(|ctx| {
            let done = ctx.read(&self.progress[row - 1])?;
            if done < need {
                // Pure read: nothing privatized while we wait.
                ctx.no_quiesce();
                return ctx.wait(&self.progress_cv, None);
            }
            Ok(())
        });
    }

    /// Record that CTU (`row`, `col`) has completed and wake dependents.
    pub fn mark_done(&self, th: &ThreadHandle, row: usize, col: u32) {
        th.tx(&self.rows_lock).run(|ctx| {
            debug_assert_eq!(ctx.read(&self.progress[row])?, col);
            ctx.write(&self.progress[row], col + 1)?;
            ctx.broadcast(&self.progress_cv)?;
            // Progress counters are never privatized.
            ctx.no_quiesce();
            Ok(())
        });
    }

    /// Direct progress snapshot (diagnostics/tests).
    pub fn progress_direct(&self, row: usize) -> u32 {
        self.progress[row].load_direct()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use tle_core::{AlgoMode, TmSystem, ALL_MODES};

    /// Drive a full grid with one thread per row; record completion order
    /// and verify every dependency was respected.
    fn run_grid(mode: AlgoMode, rows: usize, cols: usize) {
        let sys = Arc::new(TmSystem::new(mode));
        let wf = Arc::new(Wavefront::new(rows, cols));
        let stamp = Arc::new(AtomicU32::new(0));
        // completion_stamp[r][c]
        let stamps: Arc<Vec<Vec<AtomicU32>>> = Arc::new(
            (0..rows)
                .map(|_| (0..cols).map(|_| AtomicU32::new(0)).collect())
                .collect(),
        );
        let handles: Vec<_> = (0..rows)
            .map(|r| {
                let sys = Arc::clone(&sys);
                let wf = Arc::clone(&wf);
                let stamp = Arc::clone(&stamp);
                let stamps = Arc::clone(&stamps);
                std::thread::spawn(move || {
                    let th = sys.register();
                    for c in 0..cols as u32 {
                        wf.wait_for_deps(&th, r, c);
                        // "Encode": tiny spin so rows interleave.
                        for _ in 0..50 {
                            std::hint::spin_loop();
                        }
                        stamps[r][c as usize]
                            .store(stamp.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
                        wf.mark_done(&th, r, c);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Dependency check: stamp(r,c) > stamp(r-1, min(c+1, cols-1)).
        for r in 1..rows {
            for c in 0..cols {
                let dep_c = (c + 1).min(cols - 1);
                let me = stamps[r][c].load(Ordering::SeqCst);
                let dep = stamps[r - 1][dep_c].load(Ordering::SeqCst);
                assert!(
                    me > dep,
                    "({r},{c}) completed at {me} before its dependency ({},{dep_c}) at {dep} under {mode:?}",
                    r - 1
                );
            }
        }
        for r in 0..rows {
            assert_eq!(wf.progress_direct(r), cols as u32);
        }
    }

    #[test]
    fn wavefront_order_respected_every_mode() {
        for mode in ALL_MODES {
            run_grid(mode, 4, 6);
        }
    }

    #[test]
    fn single_row_needs_no_waiting() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let wf = Wavefront::new(1, 8);
        for c in 0..8 {
            wf.wait_for_deps(&th, 0, c); // must not block
            wf.mark_done(&th, 0, c);
        }
        assert_eq!(wf.progress_direct(0), 8);
    }

    #[test]
    fn last_column_dependency_clamps() {
        // CTU (1, cols-1) depends on the *end* of row 0, not (0, cols).
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let wf = Arc::new(Wavefront::new(2, 3));
        let sys2 = Arc::clone(&sys);
        let wf2 = Arc::clone(&wf);
        let t = std::thread::spawn(move || {
            let th = sys2.register();
            for c in 0..3 {
                wf2.wait_for_deps(&th, 1, c);
                wf2.mark_done(&th, 1, c);
            }
        });
        let th = sys.register();
        std::thread::sleep(std::time::Duration::from_millis(10));
        for c in 0..3 {
            if c < 2 {
                // progress[0] < 2: row 1 cannot have started.
                assert_eq!(wf.progress_direct(1), 0, "row 1 must still be blocked");
            }
            wf.mark_done(&th, 0, c);
        }
        t.join().unwrap();
        assert_eq!(wf.progress_direct(1), 3);
    }
}

/// Reconstruction progress of a frame, for **frame-level parallelism**:
/// a P-frame's wavefront may encode its CTU row `r` once the reference
/// frame's reconstruction watermark covers every pixel its motion search
/// can touch (rows `0..=r+1`, given the ±8 px search range).
///
/// Rows complete out of order (they belong to a wavefront), so completion
/// flags feed a contiguous watermark. x265 tracks exactly this per-frame
/// progress for its "frame threads".
pub struct RowProgress {
    lock: ElidableMutex,
    cv: TxCondvar,
    done: Vec<TCell<bool>>,
    /// Contiguous rows complete from the top.
    watermark: TCell<u32>,
}

impl RowProgress {
    /// Progress tracker for a frame of `rows` CTU rows.
    pub fn new(rows: usize) -> Self {
        RowProgress {
            lock: ElidableMutex::new("frame-recon-progress"),
            cv: TxCondvar::new(),
            done: (0..rows).map(|_| TCell::new(false)).collect(),
            watermark: TCell::new(0),
        }
    }

    /// The progress tracker's elidable lock, for per-lock policy adoption
    /// ([`TmSystem::adopt_lock`]).
    ///
    /// [`TmSystem::adopt_lock`]: tle_core::TmSystem::adopt_lock
    pub fn lock(&self) -> &ElidableMutex {
        &self.lock
    }

    /// Total rows tracked.
    pub fn rows(&self) -> u32 {
        self.done.len() as u32
    }

    /// Mark row `r` reconstructed; advances the watermark over any newly
    /// contiguous rows and wakes waiters.
    pub fn row_done(&self, th: &ThreadHandle, r: usize) {
        th.tx(&self.lock).run(|ctx| {
            ctx.write(&self.done[r], true)?;
            let mut w = ctx.read(&self.watermark)?;
            let before = w;
            while (w as usize) < self.done.len() && ctx.read(&self.done[w as usize])? {
                w += 1;
            }
            if w != before {
                ctx.write(&self.watermark, w)?;
                ctx.broadcast(&self.cv)?;
            }
            ctx.no_quiesce();
            Ok(())
        });
    }

    /// Block until at least `n` rows are reconstructed (clamped to the
    /// frame height).
    pub fn wait_rows(&self, th: &ThreadHandle, n: u32) {
        let need = n.min(self.rows());
        th.tx(&self.lock).run(|ctx| {
            if ctx.read(&self.watermark)? < need {
                ctx.no_quiesce();
                return ctx.wait(&self.cv, None);
            }
            Ok(())
        });
    }

    /// Current watermark (diagnostics).
    pub fn watermark_direct(&self) -> u32 {
        self.watermark.load_direct()
    }
}

#[cfg(test)]
mod progress_tests {
    use super::*;
    use std::sync::Arc;
    use tle_core::{AlgoMode, TmSystem, ALL_MODES};

    #[test]
    fn watermark_advances_contiguously() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let p = RowProgress::new(4);
        p.row_done(&th, 2); // out of order: no watermark movement
        assert_eq!(p.watermark_direct(), 0);
        p.row_done(&th, 0);
        assert_eq!(p.watermark_direct(), 1);
        p.row_done(&th, 1); // unlocks 0..=2
        assert_eq!(p.watermark_direct(), 3);
        p.row_done(&th, 3);
        assert_eq!(p.watermark_direct(), 4);
    }

    #[test]
    fn wait_rows_blocks_until_watermark() {
        for mode in ALL_MODES {
            let sys = Arc::new(TmSystem::new(mode));
            let p = Arc::new(RowProgress::new(3));
            let waiter = {
                let sys = Arc::clone(&sys);
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let th = sys.register();
                    let t0 = std::time::Instant::now();
                    p.wait_rows(&th, 2);
                    t0.elapsed()
                })
            };
            std::thread::sleep(std::time::Duration::from_millis(25));
            let th = sys.register();
            p.row_done(&th, 0);
            p.row_done(&th, 1);
            let waited = waiter.join().unwrap();
            assert!(
                waited >= std::time::Duration::from_millis(10),
                "waiter returned early under {mode:?}"
            );
        }
    }

    #[test]
    fn wait_rows_clamps_to_frame_height() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let p = RowProgress::new(2);
        p.row_done(&th, 0);
        p.row_done(&th, 1);
        p.wait_rows(&th, 99); // must not hang: clamped to 2
    }
}
