//! The integer transform + quantization stage.
//!
//! An 8×8 Walsh-Hadamard transform: integer, orthogonal up to a factor of
//! 64, and therefore exactly invertible — the same family of integer
//! transforms HEVC uses (x265 computes SATD with precisely this transform).
//! Quantization divides coefficients by a QP-derived step; reconstruction
//! error is bounded by step/2 per coefficient.

/// Transform block edge (CTUs are split into 2×2 of these).
pub const TB: usize = 8;

/// Forward 8×8 Walsh-Hadamard transform of a residual block.
pub fn fwht8x8(block: &[i32; TB * TB]) -> [i32; TB * TB] {
    let mut tmp = *block;
    for row in 0..TB {
        wht8(&mut tmp[row * TB..(row + 1) * TB]);
    }
    let mut out = [0i32; TB * TB];
    for col in 0..TB {
        let mut colv = [0i32; TB];
        for row in 0..TB {
            colv[row] = tmp[row * TB + col];
        }
        wht8(&mut colv);
        for row in 0..TB {
            out[row * TB + col] = colv[row];
        }
    }
    out
}

/// Inverse of [`fwht8x8`] (WHT is self-inverse up to scaling by 64).
pub fn iwht8x8(coefs: &[i32; TB * TB]) -> [i32; TB * TB] {
    let mut out = fwht8x8(coefs);
    for v in out.iter_mut() {
        *v >>= 6; // divide by 64 (8 per dimension)
    }
    out
}

fn wht8(v: &mut [i32]) {
    debug_assert_eq!(v.len(), 8);
    // Classic in-place fast Walsh-Hadamard butterflies; self-inverse up to
    // a factor of 8.
    let mut h = 1usize;
    while h < 8 {
        let mut i = 0usize;
        while i < 8 {
            for j in i..i + h {
                let x = v[j];
                let y = v[j + h];
                v[j] = x + y;
                v[j + h] = x - y;
            }
            i += h * 2;
        }
        h *= 2;
    }
}

/// Quantization step for a QP (exponential like HEVC's Qstep ≈ 2^(qp/6)).
pub fn qstep(qp: u8) -> i32 {
    1i32 << (qp / 6).min(14)
}

/// Quantize coefficients in place; returns the number of non-zero levels
/// (a proxy for coded bits).
pub fn quantize(coefs: &mut [i32; TB * TB], qp: u8) -> u32 {
    let q = qstep(qp);
    let mut nz = 0;
    for c in coefs.iter_mut() {
        let sign = if *c < 0 { -1 } else { 1 };
        let level = (c.abs() + q / 2) / q;
        *c = sign * level;
        if level != 0 {
            nz += 1;
        }
    }
    nz
}

/// Dequantize levels in place.
pub fn dequantize(levels: &mut [i32; TB * TB], qp: u8) {
    let q = qstep(qp);
    for l in levels.iter_mut() {
        *l *= q;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tle_base::rng::XorShift64;

    #[test]
    fn wht_is_exactly_invertible() {
        let mut rng = XorShift64::new(3);
        for _ in 0..50 {
            let mut block = [0i32; 64];
            for v in block.iter_mut() {
                *v = (rng.next_u64() % 511) as i32 - 255;
            }
            let coefs = fwht8x8(&block);
            let back = iwht8x8(&coefs);
            assert_eq!(back, block);
        }
    }

    #[test]
    fn dc_block_transforms_to_single_coefficient() {
        let block = [7i32; 64];
        let coefs = fwht8x8(&block);
        assert_eq!(coefs[0], 7 * 64);
        assert!(coefs[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn transform_is_linear() {
        let mut rng = XorShift64::new(8);
        let mut a = [0i32; 64];
        let mut b = [0i32; 64];
        for i in 0..64 {
            a[i] = (rng.next_u64() % 100) as i32;
            b[i] = (rng.next_u64() % 100) as i32;
        }
        let mut sum = [0i32; 64];
        for i in 0..64 {
            sum[i] = a[i] + b[i];
        }
        let ta = fwht8x8(&a);
        let tb = fwht8x8(&b);
        let tsum = fwht8x8(&sum);
        for i in 0..64 {
            assert_eq!(tsum[i], ta[i] + tb[i]);
        }
    }

    #[test]
    fn qp_zero_is_lossless() {
        let mut rng = XorShift64::new(4);
        let mut block = [0i32; 64];
        for v in block.iter_mut() {
            *v = (rng.next_u64() % 255) as i32 - 127;
        }
        let mut coefs = fwht8x8(&block);
        quantize(&mut coefs, 0);
        dequantize(&mut coefs, 0);
        assert_eq!(iwht8x8(&coefs), block);
    }

    #[test]
    fn higher_qp_means_fewer_nonzeros_and_bounded_error() {
        let mut rng = XorShift64::new(6);
        let mut block = [0i32; 64];
        for v in block.iter_mut() {
            *v = (rng.next_u64() % 61) as i32 - 30;
        }
        let mut prev_nz = u32::MAX;
        for qp in [0u8, 12, 24, 36] {
            let mut coefs = fwht8x8(&block);
            let nz = quantize(&mut coefs, qp);
            assert!(nz <= prev_nz, "qp {qp}: nz grew");
            prev_nz = nz;
            dequantize(&mut coefs, qp);
            let rec = iwht8x8(&coefs);
            let step = qstep(qp);
            for i in 0..64 {
                let err = (rec[i] - block[i]).abs();
                // WHT error bound: step/2 per coefficient, spread by 1/64.
                assert!(
                    err <= step,
                    "qp {qp}: error {err} exceeds bound {step} at {i}"
                );
            }
        }
    }

    #[test]
    fn qstep_is_monotone() {
        let mut prev = 0;
        for qp in (0..60).step_by(6) {
            let s = qstep(qp);
            assert!(s >= prev);
            prev = s;
        }
    }
}
