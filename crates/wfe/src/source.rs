//! Synthetic video: a deterministic moving scene standing in for the
//! paper's 38 MB / 735 MB / 3.8 GB inputs (DESIGN.md substitution §3.5).
//!
//! Each frame is a diagonal gradient background, a bright disc moving on a
//! Lissajous path (motion for the inter predictor to find) and low-level
//! seeded noise (so frames are not trivially compressible).

use crate::frame::Frame;

/// A deterministic frame generator.
pub struct VideoSource {
    width: usize,
    height: usize,
    frames: usize,
    seed: u64,
    next: usize,
}

impl VideoSource {
    /// A source producing `frames` frames of `width`×`height`.
    pub fn new(width: usize, height: usize, frames: usize, seed: u64) -> Self {
        VideoSource {
            width,
            height,
            frames,
            seed,
            next: 0,
        }
    }

    /// Total frame count.
    pub fn len(&self) -> usize {
        self.frames
    }

    /// Whether the source is exhausted-by-construction (zero frames).
    pub fn is_empty(&self) -> bool {
        self.frames == 0
    }

    /// Generate frame `t` (independent of iteration state).
    pub fn frame(&self, t: usize) -> Frame {
        let mut f = Frame::new(self.width, self.height);
        let w = self.width as f64;
        let h = self.height as f64;
        let tt = t as f64;
        // Disc centre moves on a Lissajous path.
        let cx = w * 0.5 + w * 0.35 * (tt * 0.21).sin();
        let cy = h * 0.5 + h * 0.35 * (tt * 0.13).cos();
        let r = (w.min(h)) * 0.15;
        for y in 0..self.height {
            for x in 0..self.width {
                let base = ((x + 2 * y + t * 3) / 2 % 160) as i32 + 40;
                let dx = x as f64 - cx;
                let dy = y as f64 - cy;
                let disc = if dx * dx + dy * dy < r * r { 70i32 } else { 0 };
                // Static film-grain texture: a per-pixel hash independent
                // of t, so motion compensation can cancel it (real grain
                // is temporally correlated; fully random per-frame noise
                // would make inter prediction pointless).
                let mut s = self.seed ^ ((x as u64) << 24) ^ (y as u64);
                let grain = (tle_base::rng::splitmix64(&mut s) % 7) as i32 - 3;
                let v = (base + disc + grain).clamp(0, 255) as u8;
                *f.px_mut(x, y) = v;
            }
        }
        f
    }
}

impl Iterator for VideoSource {
    type Item = Frame;
    fn next(&mut self) -> Option<Frame> {
        if self.next >= self.frames {
            return None;
        }
        let f = self.frame(self.next);
        self.next += 1;
        Some(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_frames() {
        let s1 = VideoSource::new(64, 32, 4, 9);
        let s2 = VideoSource::new(64, 32, 4, 9);
        for t in 0..4 {
            assert_eq!(s1.frame(t), s2.frame(t));
        }
    }

    #[test]
    fn iterator_yields_exact_count() {
        let s = VideoSource::new(32, 32, 7, 1);
        assert_eq!(s.count(), 7);
    }

    #[test]
    fn consecutive_frames_are_similar_but_not_identical() {
        let s = VideoSource::new(64, 64, 3, 5);
        let a = s.frame(0);
        let b = s.frame(1);
        assert_ne!(a, b);
        // Motion is small: average per-pixel difference stays modest.
        let sad = a.sad(&b);
        let per_px = sad as f64 / (64.0 * 64.0);
        assert!(per_px < 40.0, "scene jumped too much: {per_px}");
        assert!(per_px > 0.5, "scene is static: {per_px}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = VideoSource::new(32, 32, 1, 1).frame(0);
        let b = VideoSource::new(32, 32, 1, 2).frame(0);
        assert_ne!(a, b);
    }
}
