//! The top-level encoder: lookahead thread → **frame-parallel**,
//! wavefront-parallel encode on the worker pool. This is the program
//! measured in Figure 3 (speedup vs. worker threads) and Figure 4 (HTM
//! abort rates).
//!
//! The paper's x265 parallelism hierarchy (§III) maps onto this module:
//!
//! - **frame-level parallelism** ("3 frame threads"): up to
//!   [`EncoderConfig::frame_threads`] frames encode simultaneously; a
//!   P-frame's CTU row `r` starts once the reference frame's
//!   reconstruction watermark ([`RowProgress`]) covers the motion-search
//!   window (reference rows `0..r+2`);
//! - **wavefront parallelism** within each frame ([`Wavefront`]);
//! - the CTU kernel below that ([`crate::ctu`]).
//!
//! The paper's lock inventory (§III):
//!
//! | x265 lock              | here                                        |
//! |------------------------|---------------------------------------------|
//! | lookahead lock         | [`ReadyQueue`] (input/output frame queues)  |
//! | CTURows lock           | [`Wavefront`]                               |
//! | EncoderRow lock        | per-frame row dispatch (`rows_issued`)      |
//! | bonded task group lock | [`BondedGroup`]                             |
//! | parallel ME lock       | the MV-predictor map (`mv_lock`)            |
//! | cost lock              | the frame bit counter (`cost_lock`)         |
//! | (frame threads)        | [`RowProgress`] (recon watermark + condvar) |

use crate::ctu::CodedCtu;
use crate::frame::{Frame, ReconFrame};
use crate::lookahead::ReadyQueue;
use crate::motion::Mv;
use crate::pool::{BondedGroup, WorkerPool};
use crate::source::VideoSource;
use crate::wavefront::{RowProgress, Wavefront};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use tle_base::TCell;
use tle_core::{ElidableMutex, ThreadHandle, TmSystem};
use tle_pbz::crc::crc32;
use tle_pbz::TleFifo;

/// Encoder parameters.
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    /// Worker threads in the pool (the paper sweeps 1-8).
    pub workers: usize,
    /// Quantization parameter (0 = lossless with this transform).
    pub qp: u8,
    /// Force a keyframe every `keyframe_interval` frames.
    pub keyframe_interval: usize,
    /// Lookahead queue depth.
    pub lookahead_depth: usize,
    /// Enable ABR rate control aiming at this many cost-bits per frame
    /// (QP then adapts around [`EncoderConfig::qp`]). Rate control
    /// serializes frames (QP for frame n depends on frame n-1's bits), so
    /// it implies `frame_threads = 1`.
    pub target_bits_per_frame: Option<u64>,
    /// Frames encoded concurrently (x265's "frame threads"; the paper's
    /// default configuration uses 3).
    pub frame_threads: usize,
    /// Independent slices per frame (§III: "each video frame is also
    /// divided into slices, which can be independently processed"). Intra
    /// prediction does not cross slice boundaries, so more slices trade
    /// compression for parallelism. Output digests are stable for a fixed
    /// slice count but differ across counts (as in real encoders).
    pub slices: usize,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            workers: 4,
            qp: 12,
            keyframe_interval: 8,
            lookahead_depth: 4,
            target_bits_per_frame: None,
            frame_threads: 3,
            slices: 1,
        }
    }
}

/// Per-frame encode result.
#[derive(Debug, Clone)]
pub struct EncodedFrame {
    /// Display index.
    pub index: usize,
    /// Whether the frame was coded without a reference.
    pub keyframe: bool,
    /// Cost-proxy bits, accumulated CTU by CTU under the cost lock.
    pub bits: u64,
    /// Reconstruction quality vs. the source frame.
    pub psnr: f64,
    /// CRC of all coded levels in raster order — equal across algorithms
    /// and thread counts (determinism check).
    pub digest: u32,
}

/// Whole-sequence result.
#[derive(Debug, Clone)]
pub struct EncodedVideo {
    /// Per-frame results, in display order.
    pub frames: Vec<EncodedFrame>,
    /// Total cost-proxy bits.
    pub total_bits: u64,
    /// Mean PSNR over all frames (dB; capped at 99 for lossless frames).
    pub mean_psnr: f64,
}

struct LookaheadItem {
    index: usize,
    frame: Frame,
    keyframe: bool,
}

/// A frame whose row jobs are on the pool.
struct InFlightFrame {
    index: usize,
    keyframe: bool,
    frame: Arc<Frame>,
    recon: Arc<ReconFrame>,
    group: Arc<BondedGroup>,
    coded: Arc<Mutex<Vec<Option<Vec<CodedCtu>>>>>,
    frame_bits: Arc<TCell<u64>>,
}

/// Encode the whole `source` under the system's active algorithm.
pub fn encode_video(
    sys: &Arc<TmSystem>,
    source: &VideoSource,
    cfg: &EncoderConfig,
) -> EncodedVideo {
    let pool = WorkerPool::new(sys, cfg.workers);
    let in_q: Arc<TleFifo<(usize, Frame)>> =
        Arc::new(TleFifo::new("frame-input", cfg.lookahead_depth));
    let la_q: Arc<ReadyQueue<LookaheadItem>> = Arc::new(ReadyQueue::new(cfg.lookahead_depth));
    // Enroll the encoder's long-lived queue locks in the per-lock adaptive
    // controller (no-ops unless the system was built with `.adaptive(true)`).
    sys.adopt_lock(in_q.lock());
    sys.adopt_lock(la_q.lock());

    // Lookahead thread: scene-cut detection + keyframe decisions. Uses the
    // paper's Listing 4 protocol (reserve, produce outside the lock,
    // publish).
    let lookahead = {
        let sys = Arc::clone(sys);
        let in_q = Arc::clone(&in_q);
        let la_q = Arc::clone(&la_q);
        let interval = cfg.keyframe_interval.max(1);
        std::thread::spawn(move || {
            let th = sys.register();
            let mut prev: Option<Frame> = None;
            while let Some(item) = in_q.pop(&th) {
                let (index, frame) = *item;
                let Some(res) = la_q.reserve(&th) else { break };
                // Produce step, outside any lock: complexity estimate.
                let scene_cut = match &prev {
                    None => true,
                    Some(p) => {
                        let per_px = frame.sad(p) as f64 / (frame.width() * frame.height()) as f64;
                        per_px > 25.0
                    }
                };
                let keyframe = scene_cut || index % interval == 0;
                prev = Some(frame.clone());
                la_q.publish(
                    &th,
                    res,
                    Box::new(LookaheadItem {
                        index,
                        frame,
                        keyframe,
                    }),
                );
            }
            la_q.close(&th);
        })
    };

    // Frame feeder.
    let feeder = {
        let sys = Arc::clone(sys);
        let in_q = Arc::clone(&in_q);
        let frames: Vec<(usize, Frame)> = (0..source.len()).map(|t| (t, source.frame(t))).collect();
        std::thread::spawn(move || {
            let th = sys.register();
            for f in frames {
                if in_q.push(&th, Box::new(f)).is_err() {
                    break;
                }
            }
            in_q.close(&th);
        })
    };

    // Encoder loop: keep up to `frame_threads` frames in flight.
    let th = sys.register();
    let mut rate = cfg
        .target_bits_per_frame
        .map(|t| crate::rate::RateController::new(t, cfg.qp));
    let frame_window = if rate.is_some() {
        1
    } else {
        cfg.frame_threads.max(1)
    };
    let mut inflight: VecDeque<InFlightFrame> = VecDeque::new();
    let mut reference: Option<(Arc<ReconFrame>, Arc<RowProgress>)> = None;
    let mut results = Vec::with_capacity(source.len());
    while let Some(item) = la_q.pop_ready(&th) {
        let LookaheadItem {
            index,
            frame,
            keyframe,
        } = *item;
        while inflight.len() >= frame_window {
            let done = inflight.pop_front().unwrap();
            let encoded = finish_frame(&th, done);
            if let Some(r) = rate.as_mut() {
                r.frame_encoded(encoded.bits);
            }
            results.push(encoded);
        }
        let qp = rate.as_ref().map(|r| r.next_qp()).unwrap_or(cfg.qp);
        let (started, recon, progress) = start_frame(
            &th,
            &pool,
            frame,
            if keyframe { None } else { reference.clone() },
            qp,
            index,
            cfg.slices.max(1),
        );
        reference = Some((recon, progress));
        inflight.push_back(started);
    }
    while let Some(done) = inflight.pop_front() {
        let encoded = finish_frame(&th, done);
        if let Some(r) = rate.as_mut() {
            r.frame_encoded(encoded.bits);
        }
        results.push(encoded);
    }
    feeder.join().unwrap();
    lookahead.join().unwrap();
    drop(th);
    pool.shutdown();

    results.sort_by_key(|f| f.index);
    let total_bits = results.iter().map(|f| f.bits).sum();
    let mean_psnr = if results.is_empty() {
        0.0
    } else {
        results.iter().map(|f| f.psnr.min(99.0)).sum::<f64>() / results.len() as f64
    };
    EncodedVideo {
        frames: results,
        total_bits,
        mean_psnr,
    }
}

/// Submit all row jobs of one frame; returns the in-flight handle plus the
/// recon buffer and progress tracker (the reference for the next frame).
#[allow(clippy::too_many_arguments)]
fn start_frame(
    th: &ThreadHandle,
    pool: &WorkerPool,
    frame: Frame,
    reference: Option<(Arc<ReconFrame>, Arc<RowProgress>)>,
    qp: u8,
    index: usize,
    slices: usize,
) -> (InFlightFrame, Arc<ReconFrame>, Arc<RowProgress>) {
    let rows = frame.ctu_rows();
    let cols = frame.ctu_cols();
    let slices = slices.min(rows);
    // Slice s covers CTU rows [bounds[s], bounds[s+1]). Each slice gets an
    // independent wavefront and MV-predictor map (no cross-slice intra
    // prediction or MV propagation).
    let bounds: Vec<usize> = (0..=slices).map(|s| s * rows / slices).collect();
    let slice_of_row = move |r: usize, bounds: &[usize]| -> usize {
        bounds
            .iter()
            .rposition(|&b| b <= r)
            .unwrap()
            .min(bounds.len() - 2)
    };
    let wfs: Arc<Vec<Wavefront>> = Arc::new(
        (0..slices)
            .map(|s| Wavefront::new(bounds[s + 1] - bounds[s], cols))
            .collect(),
    );
    let recon = Arc::new(ReconFrame::new(frame.width(), frame.height()));
    let progress = Arc::new(RowProgress::new(rows));
    let frame = Arc::new(frame);
    let group = Arc::new(BondedGroup::new(rows as u32));
    let coded: Arc<Mutex<Vec<Option<Vec<CodedCtu>>>>> = Arc::new(Mutex::new(vec![None; rows]));

    // Per-frame locks join the adaptive controller too: frames are long
    // enough for the window to accumulate a useful abort mix (no-ops when
    // adaptation is off).
    let sys = th.system();
    for wf in wfs.iter() {
        sys.adopt_lock(wf.lock());
    }
    sys.adopt_lock(progress.lock());
    sys.adopt_lock(group.lock());

    // The "cost lock": per-CTU bit accounting (small, hot critical section).
    let cost_lock = Arc::new(ElidableMutex::new("cost"));
    sys.adopt_lock(&cost_lock);
    let frame_bits = Arc::new(TCell::new(0u64));
    // The "parallel ME lock": MV predictor maps, one per slice.
    let mv_lock = Arc::new(ElidableMutex::new("parallel-me"));
    sys.adopt_lock(&mv_lock);
    let mv_maps: Arc<Vec<Vec<TCell<u64>>>> = Arc::new(
        (0..slices)
            .map(|_| (0..cols).map(|_| TCell::new(0)).collect())
            .collect(),
    );
    let bounds = Arc::new(bounds);
    // The "EncoderRow lock": row dispatch counter.
    let row_lock = Arc::new(ElidableMutex::new("encoder-row"));
    sys.adopt_lock(&row_lock);
    let rows_issued = Arc::new(TCell::new(0u32));

    for _ in 0..rows {
        let wfs = Arc::clone(&wfs);
        let recon = Arc::clone(&recon);
        let progress = Arc::clone(&progress);
        let frame = Arc::clone(&frame);
        let reference = reference.clone();
        let group = Arc::clone(&group);
        let coded = Arc::clone(&coded);
        let cost_lock = Arc::clone(&cost_lock);
        let frame_bits = Arc::clone(&frame_bits);
        let mv_lock = Arc::clone(&mv_lock);
        let mv_maps = Arc::clone(&mv_maps);
        let bounds = Arc::clone(&bounds);
        let row_lock = Arc::clone(&row_lock);
        let rows_issued = Arc::clone(&rows_issued);
        pool.submit(th, move |wth| {
            // Claim a row (EncoderRow lock).
            let r = wth.tx(&row_lock).run(|ctx| {
                let r = ctx.read(&*rows_issued)?;
                ctx.write(&*rows_issued, r + 1)?;
                ctx.no_quiesce();
                Ok(r)
            }) as usize;
            // Frame-level parallelism gate: the reference reconstruction
            // must cover this row's motion-search window (rows 0..r+2).
            if let Some((_, ref_progress)) = &reference {
                ref_progress.wait_rows(wth, r as u32 + 2);
            }
            let s = slice_of_row(r, &bounds);
            let wf = &wfs[s];
            let mv_map = &mv_maps[s];
            let slice_top = bounds[s];
            let local_r = r - slice_top;
            let mut row_out = Vec::with_capacity(cols);
            for c in 0..cols as u32 {
                wf.wait_for_deps(wth, local_r, c);
                // MV predictor: the top neighbour's motion vector
                // (deterministic — WPP guarantees it is final; reset at
                // slice boundaries).
                let pred = if local_r == 0 {
                    Mv::default()
                } else {
                    let w = wth.tx(&mv_lock).run(|ctx| {
                        let v = ctx.read(&mv_map[c as usize])?;
                        ctx.no_quiesce();
                        Ok(v)
                    });
                    Mv::unpack(w)
                };
                let coded_ctu = crate::ctu::encode_ctu_sliced(
                    &frame,
                    &recon,
                    reference.as_ref().map(|(r, _)| &**r),
                    c as usize,
                    r,
                    qp,
                    pred,
                    slice_top,
                );
                // Publish our MV for the row below (parallel ME lock).
                let own_mv = match coded_ctu.mode {
                    crate::ctu::PredMode::Inter(mv) => mv,
                    crate::ctu::PredMode::IntraDc => Mv::default(),
                };
                wth.tx(&mv_lock).run(|ctx| {
                    ctx.write(&mv_map[c as usize], own_mv.pack())?;
                    ctx.no_quiesce();
                    Ok(())
                });
                // Accumulate bits (cost lock).
                let bits = coded_ctu.cost_bits();
                wth.tx(&cost_lock).run(|ctx| {
                    ctx.update(&*frame_bits, |b| b + bits)?;
                    ctx.no_quiesce();
                    Ok(())
                });
                row_out.push(coded_ctu);
                wf.mark_done(wth, local_r, c);
            }
            coded.lock()[r] = Some(row_out);
            // Publish reconstruction progress for dependent frames.
            progress.row_done(wth, r);
            group.task_done(wth);
        });
    }
    let keyframe = reference.is_none();
    (
        InFlightFrame {
            index,
            keyframe,
            frame,
            recon: Arc::clone(&recon),
            group,
            coded,
            frame_bits,
        },
        recon,
        progress,
    )
}

/// Wait for a frame's rows to finish and assemble its result.
fn finish_frame(th: &ThreadHandle, f: InFlightFrame) -> EncodedFrame {
    f.group.wait_all(th);
    let coded = f.coded.lock();
    let mut bytes = Vec::new();
    for row in coded.iter() {
        for ctu in row.as_ref().expect("row missing").iter() {
            match ctu.mode {
                crate::ctu::PredMode::IntraDc => bytes.push(0u8),
                crate::ctu::PredMode::Inter(mv) => {
                    bytes.push(1);
                    bytes.extend_from_slice(&mv.pack().to_le_bytes());
                }
            }
            for &l in &ctu.levels {
                bytes.extend_from_slice(&l.to_le_bytes());
            }
        }
    }
    EncodedFrame {
        index: f.index,
        keyframe: f.keyframe,
        bits: f.frame_bits.load_direct(),
        psnr: f.recon.freeze().psnr(&f.frame),
        digest: crc32(&bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tle_core::{AlgoMode, ALL_MODES};

    fn small_source() -> VideoSource {
        VideoSource::new(64, 48, 6, 42)
    }

    #[test]
    fn encode_produces_one_result_per_frame() {
        let sys = Arc::new(TmSystem::new(AlgoMode::Baseline));
        let v = encode_video(&sys, &small_source(), &EncoderConfig::default());
        assert_eq!(v.frames.len(), 6);
        for (i, f) in v.frames.iter().enumerate() {
            assert_eq!(f.index, i);
            assert!(f.bits > 0);
        }
        assert!(v.frames[0].keyframe, "first frame must be intra");
        assert!(v.total_bits > 0);
    }

    #[test]
    fn qp0_is_lossless() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let cfg = EncoderConfig {
            qp: 0,
            ..EncoderConfig::default()
        };
        let v = encode_video(&sys, &small_source(), &cfg);
        for f in &v.frames {
            assert!(f.psnr.is_infinite(), "frame {} lost data at QP 0", f.index);
        }
    }

    #[test]
    fn inter_frames_cost_fewer_bits_than_keyframes() {
        let sys = Arc::new(TmSystem::new(AlgoMode::Baseline));
        let cfg = EncoderConfig {
            qp: 12,
            keyframe_interval: 100,
            ..EncoderConfig::default()
        };
        let v = encode_video(&sys, &small_source(), &cfg);
        let key = &v.frames[0];
        let inter: Vec<_> = v.frames.iter().filter(|f| !f.keyframe).collect();
        assert!(!inter.is_empty());
        let mean_inter = inter.iter().map(|f| f.bits).sum::<u64>() / inter.len() as u64;
        assert!(
            mean_inter < key.bits,
            "motion compensation should beat intra: {} vs {}",
            mean_inter,
            key.bits
        );
    }

    #[test]
    fn output_identical_across_modes_workers_and_frame_threads() {
        let cfg1 = EncoderConfig {
            workers: 1,
            frame_threads: 1,
            ..EncoderConfig::default()
        };
        let sys = Arc::new(TmSystem::new(AlgoMode::Baseline));
        let golden = encode_video(&sys, &small_source(), &cfg1);
        for mode in ALL_MODES {
            for (workers, frame_threads) in [(1usize, 3usize), (3, 1), (3, 3)] {
                let cfg = EncoderConfig {
                    workers,
                    frame_threads,
                    ..EncoderConfig::default()
                };
                let sys = Arc::new(TmSystem::new(mode));
                let v = encode_video(&sys, &small_source(), &cfg);
                let a: Vec<u32> = golden.frames.iter().map(|f| f.digest).collect();
                let b: Vec<u32> = v.frames.iter().map(|f| f.digest).collect();
                assert_eq!(
                    a, b,
                    "encoder output varies under {mode:?} with {workers}w/{frame_threads}f"
                );
                assert_eq!(golden.total_bits, v.total_bits);
            }
        }
    }

    #[test]
    fn output_identical_under_adaptive_controller() {
        // The encoder adopts its queue/wavefront/cost locks; run with an
        // aggressive controller so modes flip mid-encode and check the
        // bitstream digests against the single-threaded baseline.
        let cfg1 = EncoderConfig {
            workers: 1,
            frame_threads: 1,
            ..EncoderConfig::default()
        };
        let sys = Arc::new(TmSystem::new(AlgoMode::Baseline));
        let golden = encode_video(&sys, &small_source(), &cfg1);
        let sys = Arc::new(
            TmSystem::builder()
                .mode(AlgoMode::HtmCondvar)
                .adaptive(true)
                .build(),
        );
        let ctrl = sys.start_controller(std::time::Duration::from_micros(100));
        let cfg = EncoderConfig {
            workers: 3,
            frame_threads: 2,
            ..EncoderConfig::default()
        };
        let v = encode_video(&sys, &small_source(), &cfg);
        ctrl.stop();
        let a: Vec<u32> = golden.frames.iter().map(|f| f.digest).collect();
        let b: Vec<u32> = v.frames.iter().map(|f| f.digest).collect();
        assert_eq!(a, b, "encoder output varies under the adaptive controller");
        assert_eq!(golden.total_bits, v.total_bits);
    }

    #[test]
    fn keyframe_interval_respected() {
        let sys = Arc::new(TmSystem::new(AlgoMode::Baseline));
        let cfg = EncoderConfig {
            keyframe_interval: 3,
            ..EncoderConfig::default()
        };
        let v = encode_video(&sys, &small_source(), &cfg);
        for f in &v.frames {
            if f.index % 3 == 0 {
                assert!(f.keyframe, "frame {} should be a keyframe", f.index);
            }
        }
    }

    #[test]
    fn rate_control_hits_lower_bitrate_deterministically() {
        let src = VideoSource::new(64, 48, 10, 42);
        let free = {
            let sys = Arc::new(TmSystem::new(AlgoMode::Baseline));
            encode_video(&sys, &src, &EncoderConfig::default())
        };
        let mean_free = free.total_bits / 10;
        let cfg = EncoderConfig {
            target_bits_per_frame: Some(mean_free / 3),
            ..EncoderConfig::default()
        };
        let run = |mode: AlgoMode, workers: usize| {
            let sys = Arc::new(TmSystem::new(mode));
            encode_video(
                &sys,
                &src,
                &EncoderConfig {
                    workers,
                    ..cfg.clone()
                },
            )
        };
        let controlled = run(AlgoMode::Baseline, 1);
        assert!(
            controlled.total_bits < free.total_bits,
            "rate control must reduce bits: {} vs {}",
            controlled.total_bits,
            free.total_bits
        );
        // Still deterministic across algorithms and worker counts.
        for mode in [AlgoMode::StmCondvar, AlgoMode::HtmCondvar] {
            let v = run(mode, 3);
            let a: Vec<u32> = controlled.frames.iter().map(|f| f.digest).collect();
            let b: Vec<u32> = v.frames.iter().map(|f| f.digest).collect();
            assert_eq!(a, b, "rate-controlled output varies under {mode:?}");
        }
    }

    #[test]
    fn frame_parallel_window_handles_extremes() {
        // Deep windows, more frame threads than frames, single worker:
        // all must terminate and agree (equality asserted elsewhere).
        let sys = Arc::new(TmSystem::new(AlgoMode::HtmCondvar));
        let cfg = EncoderConfig {
            workers: 6,
            frame_threads: 8, // more than the frame count
            ..EncoderConfig::default()
        };
        let v = encode_video(&sys, &small_source(), &cfg);
        assert_eq!(v.frames.len(), 6);

        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let cfg = EncoderConfig {
            workers: 1,
            frame_threads: 4, // frame window without worker parallelism
            ..EncoderConfig::default()
        };
        let v2 = encode_video(&sys, &small_source(), &cfg);
        let a: Vec<u32> = v.frames.iter().map(|f| f.digest).collect();
        let b: Vec<u32> = v2.frames.iter().map(|f| f.digest).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn slices_trade_bits_for_independence() {
        let src = VideoSource::new(64, 64, 3, 7);
        let run = |slices: usize| {
            let sys = Arc::new(TmSystem::new(AlgoMode::Baseline));
            encode_video(
                &sys,
                &src,
                &EncoderConfig {
                    slices,
                    keyframe_interval: 100,
                    ..EncoderConfig::default()
                },
            )
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.frames.len(), four.frames.len());
        // Slice boundaries cut intra prediction: keyframe bits cannot drop.
        assert!(
            four.frames[0].bits >= one.frames[0].bits,
            "4-slice keyframe cheaper than 1-slice: {} vs {}",
            four.frames[0].bits,
            one.frames[0].bits
        );
        // Deterministic for a fixed slice count, across modes and workers.
        for mode in [AlgoMode::StmCondvar, AlgoMode::HtmCondvar] {
            let sys = Arc::new(TmSystem::new(mode));
            let v = encode_video(
                &sys,
                &src,
                &EncoderConfig {
                    slices: 4,
                    workers: 3,
                    keyframe_interval: 100,
                    ..EncoderConfig::default()
                },
            );
            let a: Vec<u32> = four.frames.iter().map(|f| f.digest).collect();
            let b: Vec<u32> = v.frames.iter().map(|f| f.digest).collect();
            assert_eq!(a, b, "sliced output varies under {mode:?}");
        }
    }

    #[test]
    fn sliced_qp0_is_still_lossless() {
        let src = VideoSource::new(64, 64, 2, 9);
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let v = encode_video(
            &sys,
            &src,
            &EncoderConfig {
                qp: 0,
                slices: 4,
                ..EncoderConfig::default()
            },
        );
        for f in &v.frames {
            assert!(f.psnr.is_infinite(), "slice boundary broke losslessness");
        }
    }

    #[test]
    fn more_slices_than_rows_is_clamped() {
        let src = VideoSource::new(64, 48, 2, 3); // 3 CTU rows
        let sys = Arc::new(TmSystem::new(AlgoMode::Baseline));
        let v = encode_video(
            &sys,
            &src,
            &EncoderConfig {
                slices: 99,
                ..EncoderConfig::default()
            },
        );
        assert_eq!(v.frames.len(), 2);
    }
}
