//! Frames: single-plane (luma) images, plus the atomic reconstruction
//! buffer the wavefront writes into.

use std::sync::atomic::{AtomicU8, Ordering};

/// CTU edge length in pixels.
pub const CTU: usize = 16;

/// An owned 8-bit luma frame. Dimensions are CTU-aligned by construction.
#[derive(Clone, PartialEq, Eq)]
pub struct Frame {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Frame {
    /// A black frame; `width`/`height` must be multiples of [`CTU`].
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width.is_multiple_of(CTU) && height.is_multiple_of(CTU),
            "dimensions must be CTU-aligned"
        );
        assert!(width > 0 && height > 0);
        Frame {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Build from raw data (length must equal `width * height`).
    pub fn from_data(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), width * height);
        assert!(width.is_multiple_of(CTU) && height.is_multiple_of(CTU));
        Frame {
            width,
            height,
            data,
        }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// CTU grid columns.
    pub fn ctu_cols(&self) -> usize {
        self.width / CTU
    }

    /// CTU grid rows.
    pub fn ctu_rows(&self) -> usize {
        self.height / CTU
    }

    /// Pixel accessor.
    #[inline]
    pub fn px(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.width + x]
    }

    /// Mutable pixel accessor.
    #[inline]
    pub fn px_mut(&mut self, x: usize, y: usize) -> &mut u8 {
        &mut self.data[y * self.width + x]
    }

    /// Raw plane data.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Sum of absolute differences against another frame (quality metric).
    pub fn sad(&self, other: &Frame) -> u64 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a as i64 - b as i64).unsigned_abs())
            .sum()
    }

    /// Peak signal-to-noise ratio in dB against a reference.
    pub fn psnr(&self, reference: &Frame) -> f64 {
        assert_eq!(self.data.len(), reference.data.len());
        let mse: f64 = self
            .data
            .iter()
            .zip(&reference.data)
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum::<f64>()
            / self.data.len() as f64;
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }
}

impl std::fmt::Debug for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Frame({}x{})", self.width, self.height)
    }
}

/// A frame being reconstructed concurrently by wavefront rows. Each pixel
/// is an `AtomicU8`: rows write their own CTU rows, and readers only look
/// at pixels whose CTU the wavefront ordered before theirs (the condvar /
/// transaction commit publishes them).
pub struct ReconFrame {
    width: usize,
    height: usize,
    data: Vec<AtomicU8>,
}

impl ReconFrame {
    /// A zeroed reconstruction buffer.
    pub fn new(width: usize, height: usize) -> Self {
        ReconFrame {
            width,
            height,
            data: (0..width * height).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel read (Acquire: pairs with the wavefront's publication).
    #[inline]
    pub fn px(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.width + x].load(Ordering::Acquire)
    }

    /// Pixel write (Release).
    #[inline]
    pub fn set_px(&self, x: usize, y: usize, v: u8) {
        self.data[y * self.width + x].store(v, Ordering::Release);
    }

    /// Snapshot into an owned [`Frame`] (call after the wavefront joins).
    pub fn freeze(&self) -> Frame {
        Frame::from_data(
            self.width,
            self.height,
            self.data
                .iter()
                .map(|p| p.load(Ordering::Acquire))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_geometry() {
        let f = Frame::new(64, 32);
        assert_eq!(f.ctu_cols(), 4);
        assert_eq!(f.ctu_rows(), 2);
        assert_eq!(f.data().len(), 64 * 32);
    }

    #[test]
    #[should_panic(expected = "CTU-aligned")]
    fn unaligned_dimensions_rejected() {
        let _ = Frame::new(60, 32);
    }

    #[test]
    fn pixel_access() {
        let mut f = Frame::new(32, 16);
        *f.px_mut(5, 3) = 200;
        assert_eq!(f.px(5, 3), 200);
        assert_eq!(f.px(5, 4), 0);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let f = Frame::new(32, 16);
        assert!(f.psnr(&f).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let mut a = Frame::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                *a.px_mut(x, y) = ((x + y) * 4) as u8;
            }
        }
        let mut slightly = a.clone();
        *slightly.px_mut(0, 0) ^= 1;
        let mut very = a.clone();
        for y in 0..32 {
            for x in 0..32 {
                *very.px_mut(x, y) = very.px(x, y).wrapping_add(40);
            }
        }
        assert!(a.psnr(&slightly) > a.psnr(&very));
        assert!(a.sad(&slightly) < a.sad(&very));
    }

    #[test]
    fn recon_roundtrip() {
        let r = ReconFrame::new(32, 16);
        r.set_px(31, 15, 99);
        assert_eq!(r.px(31, 15), 99);
        let f = r.freeze();
        assert_eq!(f.px(31, 15), 99);
        assert_eq!(f.px(0, 0), 0);
    }
}
