//! Rate control: adapt QP frame-by-frame to hit a target bitrate.
//!
//! A miniature of x265's ABR controller: a virtual bit reservoir drains at
//! the target rate and fills with actual coded bits; QP steps up when the
//! reservoir overflows and down when it runs dry. Decisions are integer
//! and depend only on the (deterministic) coded-bits sequence, so rate-
//! controlled output remains bit-identical across thread counts and
//! algorithms — which the tests assert.

/// Deterministic per-frame QP controller.
#[derive(Debug, Clone)]
pub struct RateController {
    target_bits_per_frame: u64,
    base_qp: u8,
    qp: u8,
    /// Signed reservoir: positive = over budget.
    reservoir: i64,
}

/// QP bounds (0 is lossless with the WHT; ~50 quantizes everything away).
const QP_MIN: u8 = 0;
const QP_MAX: u8 = 48;
/// Reservoir slack before a QP step, in frames' worth of bits.
const DEADBAND_FRAMES: i64 = 2;

impl RateController {
    /// A controller aiming at `target_bits_per_frame`, starting at
    /// `base_qp`.
    pub fn new(target_bits_per_frame: u64, base_qp: u8) -> Self {
        RateController {
            // Clamp so reservoir arithmetic can never overflow i64.
            target_bits_per_frame: target_bits_per_frame.clamp(1, 1 << 40),
            base_qp,
            qp: base_qp,
            reservoir: 0,
        }
    }

    /// QP to use for the next frame.
    pub fn next_qp(&self) -> u8 {
        self.qp
    }

    /// Account a finished frame and adapt.
    pub fn frame_encoded(&mut self, bits: u64) {
        let bits = bits.min(1 << 40) as i64;
        self.reservoir = self
            .reservoir
            .saturating_add(bits - self.target_bits_per_frame as i64);
        let deadband = DEADBAND_FRAMES * self.target_bits_per_frame as i64;
        if self.reservoir > deadband {
            // Persistent overshoot: coarser quantization. QP steps of 6
            // double the quantization step.
            self.qp = self.qp.saturating_add(6).min(QP_MAX);
            self.reservoir = self.reservoir.min(2 * deadband);
        } else if self.reservoir < -deadband && self.qp > QP_MIN {
            // Saturation alone suffices while QP_MIN is 0.
            self.qp = self.qp.saturating_sub(6);
            self.reservoir = self.reservoir.max(-2 * deadband);
        }
    }

    /// The configured starting QP.
    pub fn base_qp(&self) -> u8 {
        self.base_qp
    }

    /// Current reservoir fill (diagnostics).
    pub fn reservoir(&self) -> i64 {
        self.reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_at_base_when_on_budget() {
        let mut rc = RateController::new(10_000, 12);
        for _ in 0..20 {
            assert_eq!(rc.next_qp(), 12);
            rc.frame_encoded(10_000);
        }
        assert_eq!(rc.reservoir(), 0);
    }

    #[test]
    fn raises_qp_under_sustained_overshoot() {
        let mut rc = RateController::new(1_000, 12);
        for _ in 0..10 {
            rc.frame_encoded(3_000);
        }
        assert!(rc.next_qp() > 12, "qp must rise: {}", rc.next_qp());
        assert!(rc.next_qp() <= QP_MAX);
    }

    #[test]
    fn lowers_qp_when_under_budget() {
        let mut rc = RateController::new(10_000, 24);
        for _ in 0..10 {
            rc.frame_encoded(1_000);
        }
        assert!(rc.next_qp() < 24, "qp must drop: {}", rc.next_qp());
    }

    #[test]
    fn qp_respects_bounds() {
        let mut hi = RateController::new(1, 46);
        for _ in 0..100 {
            hi.frame_encoded(1_000_000);
        }
        assert!(hi.next_qp() <= QP_MAX);
        let mut lo = RateController::new(u64::MAX / 4, 2); // clamped internally
        for _ in 0..100 {
            lo.frame_encoded(0);
        }
        assert_eq!(lo.next_qp(), QP_MIN);
    }

    #[test]
    fn deterministic_for_same_bit_sequence() {
        let seq = [5_000u64, 9_000, 2_000, 14_000, 7_000, 7_000];
        let run = || {
            let mut rc = RateController::new(6_000, 12);
            seq.iter()
                .map(|&b| {
                    let q = rc.next_qp();
                    rc.frame_encoded(b);
                    q
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
