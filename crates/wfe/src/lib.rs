//! # tle-wfe — an x265-style wavefront video encoder
//!
//! The paper's second application is x265, the HEVC encoder. Reproducing a
//! full HEVC codec is out of scope (DESIGN.md substitution §3.4); this
//! crate rebuilds the *parts the paper's analysis touches*:
//!
//! - a real (if small) **encode kernel**: 16×16 CTUs with intra prediction
//!   from reconstructed neighbours ([`ctu`]), an exactly-invertible integer
//!   transform + quantization ([`transform`]), and SAD motion search
//!   against the previous reconstructed frame ([`motion`]);
//! - **wavefront parallel processing** ([`wavefront`]): CTU (r, c) may
//!   start once its left neighbour and its top-right neighbour are done —
//!   the dependency structure of Figure 1 — coordinated through the
//!   "CTURows" lock and condition variable;
//! - the **lookahead queues** ([`lookahead`]) including the paper's §V
//!   story: the original x265 held its output-queue lock across the entire
//!   produce step (Listing 3, *not two-phase locking*, untransactionalizable)
//!   — the crate implements the **ready-flag refactoring** (Listing 4) as
//!   the TLE-compatible design, and keeps a baseline-only nested variant
//!   for the ablation bench;
//! - a **thread pool with bonded task groups** ([`pool`]), x265's job
//!   distribution abstraction;
//! - the remaining small-but-hot locks: per-frame **cost lock** (rate
//!   statistics) and **motion-vector predictor lock**, exercised once per
//!   CTU ([`encoder`]).
//!
//! Everything is written against the `tle-core` [`TxCtx`] API, so the whole
//! encoder runs under any of the paper's five algorithms; the encoded
//! output is bit-identical across algorithms and thread counts, which the
//! tests assert.
//!
//! [`TxCtx`]: tle_core::TxCtx

pub mod ctu;
pub mod encoder;
pub mod frame;
pub mod lookahead;
pub mod motion;
pub mod pool;
pub mod rate;
pub mod source;
pub mod transform;
pub mod wavefront;

pub use encoder::{encode_video, EncodedVideo, EncoderConfig};
pub use frame::Frame;
pub use source::VideoSource;
