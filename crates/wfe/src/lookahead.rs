//! The lookahead queues — and the paper's two-phase-locking story (§V).
//!
//! x265's lookahead thread estimates frame complexity ahead of the encoder.
//! Its original output-queue protocol (the paper's Listing 3) locked the
//! queue, enqueued a node, **kept the lock held across the entire produce
//! step** — which itself ran further critical sections — and only then
//! unlocked. That lock-acquisition pattern is not two-phase, so the outer
//! critical section cannot be replaced by a transaction: the inner critical
//! sections' effects would have to become visible while the enclosing
//! "transaction" is still speculative.
//!
//! The paper's fix (Listing 4) is the **ready flag**: enqueue a not-ready
//! node in one short critical section, produce *outside* any lock, then
//! mark the node ready in a second short critical section. The consumer
//! dequeues only ready nodes. [`ReadyQueue`] implements that protocol;
//! the `ablate_ready_flag` bench keeps the original Listing 3 shape (real
//! locks only) to verify the refactoring did not change performance.

use tle_base::TCell;
use tle_core::{ElidableMutex, ThreadHandle, TxCondvar};

/// A bounded queue whose entries carry a ready flag (paper Listing 4).
///
/// Producers `reserve` a slot (short critical section), build the payload
/// outside any lock, then `publish` it (second short critical section).
/// Consumers block until the *head* entry is ready — preserving FIFO order
/// of reservation, as x265's frame pipeline requires.
pub struct ReadyQueue<T: Send> {
    /// The "lookahead" lock.
    lock: ElidableMutex,
    ready_cv: TxCondvar,
    space_cv: TxCondvar,
    head: TCell<u64>,
    tail: TCell<u64>,
    closed: TCell<bool>,
    slots: Box<[TCell<*mut ()>]>,
    ready: Box<[TCell<bool>]>,
    _t: std::marker::PhantomData<T>,
}

// SAFETY: payload ownership is transferred through the queue exactly once.
unsafe impl<T: Send> Send for ReadyQueue<T> {}
unsafe impl<T: Send> Sync for ReadyQueue<T> {}

/// A reserved-but-unpublished entry.
#[must_use = "a reservation must be published"]
pub struct Reservation {
    id: u64,
}

impl<T: Send> ReadyQueue<T> {
    /// A queue with capacity `cap`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        ReadyQueue {
            lock: ElidableMutex::new("lookahead"),
            ready_cv: TxCondvar::new(),
            space_cv: TxCondvar::new(),
            head: TCell::new(0),
            tail: TCell::new(0),
            closed: TCell::new(false),
            slots: (0..cap).map(|_| TCell::new(std::ptr::null_mut())).collect(),
            ready: (0..cap).map(|_| TCell::new(false)).collect(),
            _t: std::marker::PhantomData,
        }
    }

    /// The queue's elidable lock, for per-lock policy adoption
    /// ([`TmSystem::adopt_lock`]).
    ///
    /// [`TmSystem::adopt_lock`]: tle_core::TmSystem::adopt_lock
    pub fn lock(&self) -> &ElidableMutex {
        &self.lock
    }

    /// Reserve the next slot (Listing 4 lines 1-5). Blocks while full;
    /// `None` if the queue is closed.
    pub fn reserve(&self, th: &ThreadHandle) -> Option<Reservation> {
        let cap = self.slots.len() as u64;
        let id = th.tx(&self.lock).run(|ctx| {
            if ctx.read(&self.closed)? {
                return Ok(u64::MAX);
            }
            let h = ctx.read(&self.head)?;
            let t = ctx.read(&self.tail)?;
            if t - h >= cap {
                ctx.no_quiesce();
                return ctx.wait(&self.space_cv, None).map(|_| u64::MAX);
            }
            ctx.write(&self.ready[(t % cap) as usize], false)?;
            ctx.write(&self.tail, t + 1)?;
            ctx.no_quiesce();
            Ok(t)
        });
        if id == u64::MAX {
            None
        } else {
            Some(Reservation { id })
        }
    }

    /// Publish the payload for a reservation (Listing 4 lines 6-9). The
    /// produce step ran outside any lock, between `reserve` and here.
    pub fn publish(&self, th: &ThreadHandle, res: Reservation, item: Box<T>) {
        let cap = self.slots.len() as u64;
        let raw = Box::into_raw(item) as *mut ();
        let idx = (res.id % cap) as usize;
        th.tx(&self.lock).run(|ctx| {
            ctx.write(&self.slots[idx], raw)?;
            ctx.write(&self.ready[idx], true)?;
            ctx.broadcast(&self.ready_cv)?;
            ctx.no_quiesce();
            Ok(())
        });
    }

    /// Pop the oldest entry once it is ready (Listing 4 lines 10-14).
    /// Blocks while the head entry is absent or not ready; `None` once the
    /// queue is closed and drained.
    pub fn pop_ready(&self, th: &ThreadHandle) -> Option<Box<T>> {
        let cap = self.slots.len() as u64;
        let raw = th.tx(&self.lock).run(|ctx| {
            let h = ctx.read(&self.head)?;
            let t = ctx.read(&self.tail)?;
            if h == t {
                if ctx.read(&self.closed)? {
                    return Ok(std::ptr::null_mut());
                }
                ctx.no_quiesce();
                return ctx.wait(&self.ready_cv, None).map(|_| std::ptr::null_mut());
            }
            let idx = (h % cap) as usize;
            if !ctx.read(&self.ready[idx])? {
                // Head reserved but not yet produced ("peek().ready" false).
                ctx.no_quiesce();
                return ctx.wait(&self.ready_cv, None).map(|_| std::ptr::null_mut());
            }
            let p = ctx.read(&self.slots[idx])?;
            ctx.write(&self.slots[idx], std::ptr::null_mut::<()>())?;
            ctx.write(&self.ready[idx], false)?;
            ctx.write(&self.head, h + 1)?;
            ctx.signal(&self.space_cv)?;
            // Extracting privatizes the payload: quiesce by default.
            Ok(p)
        });
        if raw.is_null() {
            None
        } else {
            // SAFETY: sole popper of this published entry.
            Some(unsafe { Box::from_raw(raw as *mut T) })
        }
    }

    /// Close: producers get `None` from `reserve`, consumers drain.
    pub fn close(&self, th: &ThreadHandle) {
        th.tx(&self.lock).run(|ctx| {
            ctx.write(&self.closed, true)?;
            ctx.broadcast(&self.ready_cv)?;
            ctx.broadcast(&self.space_cv)?;
            ctx.no_quiesce();
            Ok(())
        });
    }
}

impl<T: Send> Drop for ReadyQueue<T> {
    fn drop(&mut self) {
        let cap = self.slots.len() as u64;
        let h = self.head.load_direct();
        let t = self.tail.load_direct();
        for i in h..t {
            let idx = (i % cap) as usize;
            let p = self.slots[idx].load_direct();
            if self.ready[idx].load_direct() && !p.is_null() {
                // SAFETY: sole owner during drop.
                unsafe { drop(Box::from_raw(p as *mut T)) };
            }
        }
    }
}

/// The paper's Listing 3 shape, expressible only with real locks: lock the
/// queue, enqueue, run `produce` (which may take other locks), unlock.
/// Kept for the `ablate_ready_flag` bench that reproduces the paper's
/// claim that the ready-flag refactoring does not change performance.
///
/// # Panics
///
/// Panics unless the system is running [`AlgoMode::Baseline`] — under TLE
/// the pattern is exactly the non-two-phase-locking shape §V shows cannot
/// be transactionalized.
///
/// [`AlgoMode::Baseline`]: tle_core::AlgoMode::Baseline
pub struct NestedQueue<T: Send> {
    inner: parking_lot::Mutex<std::collections::VecDeque<Box<T>>>,
    cv: parking_lot::Condvar,
    closed: parking_lot::Mutex<bool>,
}

impl<T: Send> NestedQueue<T> {
    /// An unbounded baseline-only queue.
    pub fn new() -> Self {
        NestedQueue {
            inner: parking_lot::Mutex::new(std::collections::VecDeque::new()),
            cv: parking_lot::Condvar::new(),
            closed: parking_lot::Mutex::new(false),
        }
    }

    /// Listing 3: hold the queue lock across the whole produce step.
    pub fn produce_while_locked(&self, produce: impl FnOnce() -> Box<T>) {
        let mut q = self.inner.lock();
        // The produce step runs with the lock held — the non-2PL pattern.
        let item = produce();
        q.push_back(item);
        drop(q);
        self.cv.notify_one();
    }

    /// Pop, blocking until an item or close.
    pub fn pop(&self) -> Option<Box<T>> {
        let mut q = self.inner.lock();
        loop {
            if let Some(item) = q.pop_front() {
                return Some(item);
            }
            if *self.closed.lock() {
                return None;
            }
            self.cv.wait(&mut q);
        }
    }

    /// Close the queue.
    pub fn close(&self) {
        *self.closed.lock() = true;
        self.cv.notify_all();
    }
}

impl<T: Send> Default for NestedQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tle_core::{AlgoMode, TmSystem, ALL_MODES};

    #[test]
    fn reserve_produce_publish_pop() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let q: ReadyQueue<u32> = ReadyQueue::new(4);
        let r = q.reserve(&th).unwrap();
        // produce outside the lock...
        q.publish(&th, r, Box::new(42));
        assert_eq!(*q.pop_ready(&th).unwrap(), 42);
        q.close(&th);
        assert!(q.pop_ready(&th).is_none());
        assert!(q.reserve(&th).is_none());
    }

    #[test]
    fn consumer_waits_for_ready_flag_not_just_presence() {
        for mode in ALL_MODES {
            let sys = Arc::new(TmSystem::new(mode));
            let q: Arc<ReadyQueue<u32>> = Arc::new(ReadyQueue::new(4));

            // Producer reserves, dawdles, then publishes.
            let producer = {
                let sys = Arc::clone(&sys);
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let th = sys.register();
                    let r = q.reserve(&th).unwrap();
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    q.publish(&th, r, Box::new(7));
                })
            };
            let consumer = {
                let sys = Arc::clone(&sys);
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let th = sys.register();
                    let t0 = std::time::Instant::now();
                    let v = *q.pop_ready(&th).unwrap();
                    (v, t0.elapsed())
                })
            };
            producer.join().unwrap();
            let (v, waited) = consumer.join().unwrap();
            assert_eq!(v, 7, "wrong value under {mode:?}");
            assert!(
                waited >= std::time::Duration::from_millis(15),
                "consumer did not wait for the ready flag under {mode:?}"
            );
        }
    }

    #[test]
    fn fifo_order_preserved_with_out_of_order_publish() {
        let sys = Arc::new(TmSystem::new(AlgoMode::HtmCondvar));
        let th = sys.register();
        let q: ReadyQueue<u64> = ReadyQueue::new(8);
        let r0 = q.reserve(&th).unwrap();
        let r1 = q.reserve(&th).unwrap();
        // Publish the *second* reservation first.
        q.publish(&th, r1, Box::new(1));
        // Head is still not ready; a non-blocking check isn't offered, so
        // publish r0 and verify order.
        q.publish(&th, r0, Box::new(0));
        assert_eq!(*q.pop_ready(&th).unwrap(), 0);
        assert_eq!(*q.pop_ready(&th).unwrap(), 1);
    }

    #[test]
    fn pipeline_through_ready_queue_every_mode() {
        for mode in ALL_MODES {
            let sys = Arc::new(TmSystem::new(mode));
            let q: Arc<ReadyQueue<u64>> = Arc::new(ReadyQueue::new(3));
            const N: u64 = 500;
            let producer = {
                let sys = Arc::clone(&sys);
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let th = sys.register();
                    for i in 0..N {
                        let r = q.reserve(&th).unwrap();
                        q.publish(&th, r, Box::new(i * i));
                    }
                    q.close(&th);
                })
            };
            let th = sys.register();
            let mut got = Vec::new();
            while let Some(v) = q.pop_ready(&th) {
                got.push(*v);
            }
            producer.join().unwrap();
            let expect: Vec<u64> = (0..N).map(|i| i * i).collect();
            assert_eq!(got, expect, "order or loss under {mode:?}");
        }
    }

    #[test]
    fn nested_queue_baseline_shape_works() {
        let q: Arc<NestedQueue<u32>> = Arc::new(NestedQueue::new());
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                q2.produce_while_locked(|| Box::new(i));
            }
            q2.close();
        });
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(*v);
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn drop_frees_ready_items() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let q: ReadyQueue<Vec<u8>> = ReadyQueue::new(4);
        let r = q.reserve(&th).unwrap();
        q.publish(&th, r, Box::new(vec![1, 2, 3]));
        drop(q);
    }
}
