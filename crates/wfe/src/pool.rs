//! The worker pool and bonded task groups — x265's job distribution layer.
//!
//! x265 wraps "traditional synchronization objects" in a thread pool and a
//! *bonded task group*: a batch of tasks bonded to one job whose issuer can
//! wait for the whole batch. Both are built here on the TLE primitives, so
//! pool dispatch itself runs under whichever of the paper's algorithms is
//! active (the "bonded task group lock" of §III).

use std::sync::Arc;
use tle_base::TCell;
use tle_core::{ElidableMutex, ThreadHandle, TmSystem, TxCondvar};
use tle_pbz::TleFifo;

type Job = Box<dyn FnOnce(&ThreadHandle) + Send>;

/// A fixed pool of worker threads fed by a TLE-elidable queue.
pub struct WorkerPool {
    queue: Arc<TleFifo<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    sys: Arc<TmSystem>,
}

impl WorkerPool {
    /// Spawn `n` workers against `sys`.
    pub fn new(sys: &Arc<TmSystem>, n: usize) -> Self {
        let queue: Arc<TleFifo<Job>> = Arc::new(TleFifo::new("pool-jobs", 64));
        let workers = (0..n.max(1))
            .map(|_| {
                let sys = Arc::clone(sys);
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let th = sys.register();
                    while let Some(job) = queue.pop(&th) {
                        (*job)(&th);
                    }
                })
            })
            .collect();
        WorkerPool {
            queue,
            workers,
            sys: Arc::clone(sys),
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Submit a job.
    pub fn submit(&self, th: &ThreadHandle, job: impl FnOnce(&ThreadHandle) + Send + 'static) {
        self.queue
            .push(th, Box::new(Box::new(job) as Job))
            .unwrap_or_else(|_| panic!("pool queue closed"));
    }

    /// Close the queue and join all workers.
    pub fn shutdown(mut self) {
        {
            let th = self.sys.register();
            self.queue.close(&th);
        }
        for w in self.workers.drain(..) {
            w.join().unwrap();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            let th = self.sys.register();
            self.queue.close(&th);
            for w in self.workers.drain(..) {
                w.join().unwrap();
            }
        }
    }
}

/// A batch of `total` tasks bonded to one issuer, who can block until all
/// of them finish (the "bonded task group" lock + condvar).
pub struct BondedGroup {
    lock: ElidableMutex,
    done_cv: TxCondvar,
    remaining: TCell<u32>,
}

impl BondedGroup {
    /// A group expecting `total` completions.
    pub fn new(total: u32) -> Self {
        BondedGroup {
            lock: ElidableMutex::new("bonded-task-group"),
            done_cv: TxCondvar::new(),
            remaining: TCell::new(total),
        }
    }

    /// The group's elidable lock, for per-lock policy adoption
    /// ([`TmSystem::adopt_lock`]).
    pub fn lock(&self) -> &ElidableMutex {
        &self.lock
    }

    /// Mark one task finished.
    pub fn task_done(&self, th: &ThreadHandle) {
        th.tx(&self.lock).run(|ctx| {
            let r = ctx.read(&self.remaining)?;
            debug_assert!(r > 0, "more completions than tasks");
            ctx.write(&self.remaining, r - 1)?;
            if r == 1 {
                ctx.broadcast(&self.done_cv)?;
            }
            ctx.no_quiesce();
            Ok(())
        });
    }

    /// Block until every task has finished.
    pub fn wait_all(&self, th: &ThreadHandle) {
        th.tx(&self.lock).run(|ctx| {
            if ctx.read(&self.remaining)? > 0 {
                ctx.no_quiesce();
                return ctx.wait(&self.done_cv, None);
            }
            Ok(())
        });
    }

    /// Remaining count (diagnostics).
    pub fn remaining_direct(&self) -> u32 {
        self.remaining.load_direct()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use tle_core::{AlgoMode, ALL_MODES};

    #[test]
    fn pool_runs_all_jobs_every_mode() {
        for mode in ALL_MODES {
            let sys = Arc::new(TmSystem::new(mode));
            let pool = WorkerPool::new(&sys, 4);
            let counter = Arc::new(AtomicUsize::new(0));
            let group = Arc::new(BondedGroup::new(100));
            {
                let th = sys.register();
                for _ in 0..100 {
                    let counter = Arc::clone(&counter);
                    let group = Arc::clone(&group);
                    pool.submit(&th, move |wth| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        group.task_done(wth);
                    });
                }
                group.wait_all(&th);
            }
            assert_eq!(
                counter.load(Ordering::SeqCst),
                100,
                "jobs lost under {mode:?}"
            );
            assert_eq!(group.remaining_direct(), 0);
            pool.shutdown();
        }
    }

    #[test]
    fn wait_all_returns_immediately_when_empty() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let th = sys.register();
        let g = BondedGroup::new(0);
        g.wait_all(&th); // must not block
    }

    #[test]
    fn drop_joins_workers() {
        let sys = Arc::new(TmSystem::new(AlgoMode::Baseline));
        let pool = WorkerPool::new(&sys, 2);
        assert_eq!(pool.size(), 2);
        drop(pool); // must not hang
    }

    #[test]
    fn multiple_waiters_all_released() {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        let g = Arc::new(BondedGroup::new(1));
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let sys = Arc::clone(&sys);
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    let th = sys.register();
                    g.wait_all(&th);
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        {
            let th = sys.register();
            g.task_done(&th);
        }
        for w in waiters {
            w.join().unwrap();
        }
    }
}
