//! Quickstart: elide one lock five different ways.
//!
//! Run: `cargo run --release --example quickstart`
//!
//! A bank of accounts protected by a single mutex is hammered by four
//! threads under each of the paper's five synchronization algorithms; the
//! invariant (total balance) holds under every one, and the printed
//! statistics show what each algorithm did under the hood.

use std::sync::Arc;
use tle_repro::prelude::*;

const ACCOUNTS: usize = 32;
const THREADS: usize = 4;
const TRANSFERS: u64 = 20_000;

fn main() {
    println!(
        "TLE quickstart: {THREADS} threads x {TRANSFERS} transfers over {ACCOUNTS} accounts\n"
    );
    for mode in ALL_MODES {
        let sys = Arc::new(TmSystem::new(mode));
        let lock = Arc::new(ElidableMutex::new("bank"));
        let accounts: Arc<Vec<TCell<i64>>> =
            Arc::new((0..ACCOUNTS).map(|_| TCell::new(1000)).collect());

        let t0 = std::time::Instant::now();
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let sys = Arc::clone(&sys);
                let lock = Arc::clone(&lock);
                let accounts = Arc::clone(&accounts);
                std::thread::spawn(move || {
                    let th = sys.register();
                    let mut rng = tle_repro::base::rng::XorShift64::new(t as u64);
                    for _ in 0..TRANSFERS {
                        let from = rng.below(ACCOUNTS as u64) as usize;
                        let to = rng.below(ACCOUNTS as u64) as usize;
                        let amount = rng.below(50) as i64;
                        th.tx(&lock).run(|ctx| {
                            let f = ctx.read(&accounts[from])?;
                            if from != to && f >= amount {
                                let t = ctx.read(&accounts[to])?;
                                ctx.write(&accounts[from], f - amount)?;
                                ctx.write(&accounts[to], t + amount)?;
                            }
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = t0.elapsed();

        let total: i64 = accounts.iter().map(|a| a.load_direct()).sum();
        assert_eq!(total, ACCOUNTS as i64 * 1000, "balance invariant violated!");

        let stm = sys.stm.stats.snapshot();
        let htm_commits = sys.htm.stats.tx.commits.get();
        let htm_aborts = sys.htm.stats.tx.aborts.get();
        let serial = sys.stats.serial_fallbacks.get();
        println!(
            "{:<24} {:>7.1} ms | stm commits {:>6} aborts {:>5} | htm commits {:>6} aborts {:>5} | serial {:>5}",
            mode.label(),
            elapsed.as_secs_f64() * 1e3,
            stm.commits,
            stm.aborts,
            htm_commits,
            htm_aborts,
            serial,
        );
    }
    println!("\nbalance invariant held under every algorithm.");
}
