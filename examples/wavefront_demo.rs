//! Wavefront encoder demo: encode a synthetic video under every algorithm
//! and verify the output is identical everywhere.
//!
//! Run: `cargo run --release --example wavefront_demo [-- <frames> <threads>]`

use std::sync::Arc;
use tle_repro::prelude::*;
use tle_repro::wfe::{encode_video, EncoderConfig, VideoSource};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let frames: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(16);
    let workers: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(4);
    let source = VideoSource::new(160, 96, frames, 0xFEED);
    let cfg = EncoderConfig {
        workers,
        qp: 12,
        keyframe_interval: 8,
        lookahead_depth: 4,
        target_bits_per_frame: None,
        frame_threads: 3,
        slices: 1,
    };
    println!("wavefront encoder demo: 160x96, {frames} frames, {workers} workers\n");

    let mut golden: Option<Vec<u32>> = None;
    for mode in ALL_MODES {
        let sys = Arc::new(TmSystem::new(mode));
        let t0 = std::time::Instant::now();
        let video = encode_video(&sys, &source, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        let digests: Vec<u32> = video.frames.iter().map(|f| f.digest).collect();
        match &golden {
            None => golden = Some(digests),
            Some(g) => assert_eq!(g, &digests, "output differs under {mode:?}"),
        }
        let keyframes = video.frames.iter().filter(|f| f.keyframe).count();
        println!(
            "{:<24} {:>6.3}s | {:>8} bits | {:>5.1} dB mean PSNR | {} keyframes",
            mode.label(),
            secs,
            video.total_bits,
            video.mean_psnr,
            keyframes
        );
    }
    println!("\nencoded output bit-identical under every algorithm.");
}
