//! One-shot reproduction summary: a fast pass over every headline claim of
//! the paper, printed as a checklist. (The full parameter sweeps live in
//! `cargo bench`; this runs in well under a minute.)
//!
//! Run: `cargo run --release --example paper_repro`

use std::sync::Arc;
use std::time::Instant;
use tle_repro::pbz::{compress_parallel, decompress_parallel, gen_text, PipelineConfig};
use tle_repro::prelude::*;
use tle_repro::wfe::{encode_video, EncoderConfig, VideoSource};

fn check(name: &str, detail: String, ok: bool) {
    println!(
        "  [{}] {:<52} {}",
        if ok { "ok" } else { "!!" },
        name,
        detail
    );
}

fn main() {
    println!("Practical Experience with Transactional Lock Elision — reproduction checklist\n");

    // 1. PBZip2 under all five algorithms (Figure 2's program).
    println!("PBZip2 (Fig. 2):");
    let input = gen_text(0x650, 1_500_000);
    let cfg = PipelineConfig {
        workers: 4,
        block_size: 100_000,
        fifo_cap: 8,
    };
    let mut times = Vec::new();
    let mut reference_out: Option<Vec<u8>> = None;
    for mode in ALL_MODES {
        let sys = Arc::new(TmSystem::new(mode));
        let t0 = Instant::now();
        let c = compress_parallel(&sys, &input, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        let ok = decompress_parallel(&sys, &c, &cfg)
            .map(|d| d == input)
            .unwrap_or(false);
        match &reference_out {
            None => reference_out = Some(c),
            Some(r) => assert_eq!(r, &c, "outputs differ across algorithms"),
        }
        check(
            &format!("compress+verify under {}", mode.label()),
            format!("{secs:.3}s"),
            ok,
        );
        times.push((mode, secs));
    }
    let base = times[0].1;
    let worst = times.iter().map(|(_, s)| s / base).fold(0.0f64, f64::max);
    check(
        "TM overhead vs pthread bounded",
        format!("worst {:.2}x of baseline", worst),
        worst < 2.0,
    );

    // 2. x265-style encoder (Figure 3's program): bit-identical output.
    println!("\nWavefront encoder (Fig. 3):");
    let source = VideoSource::new(96, 64, 8, 0xFEED);
    let mut golden: Option<Vec<u32>> = None;
    for mode in ALL_MODES {
        let sys = Arc::new(TmSystem::new(mode));
        let t0 = Instant::now();
        let v = encode_video(&sys, &source, &EncoderConfig::default());
        let digests: Vec<u32> = v.frames.iter().map(|f| f.digest).collect();
        let same = match &golden {
            None => {
                golden = Some(digests);
                true
            }
            Some(g) => g == &digests,
        };
        check(
            &format!("encode under {}", mode.label()),
            format!("{:.3}s, {} bits", t0.elapsed().as_secs_f64(), v.total_bits),
            same,
        );
    }

    // 3. §IV: quiescence economics — a long transaction stalls unrelated
    // committers; TM_NoQuiesce decouples them.
    println!("\nQuiescence (§IV):");
    let measure = |policy: QuiescePolicy, annotate: bool| -> (f64, u64) {
        let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
        sys.stm.set_policy(policy);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let long = {
            let sys = Arc::clone(&sys);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let th = sys.register();
                let lock = ElidableMutex::new("long");
                let cells: Vec<TCell<u64>> = (0..256).map(TCell::new).collect();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    th.tx(&lock).run(|ctx| {
                        let mut acc = 0u64;
                        for c in &cells {
                            acc = acc.wrapping_add(ctx.read(c)?);
                        }
                        for _ in 0..2000 {
                            std::hint::spin_loop();
                        }
                        std::hint::black_box(acc);
                        Ok(())
                    });
                }
            })
        };
        // Let the long transaction actually get going (one CPU: give it
        // the scheduler slot).
        std::thread::sleep(std::time::Duration::from_millis(20));
        let th = sys.register();
        let lock = ElidableMutex::new("fg");
        let cell = TCell::new(0u64);
        const OPS: u64 = 30_000;
        let t0 = Instant::now();
        for _ in 0..OPS {
            th.tx(&lock).run(|ctx| {
                ctx.update(&cell, |v| v + 1)?;
                if annotate {
                    ctx.no_quiesce();
                }
                Ok(())
            });
        }
        let us = t0.elapsed().as_micros() as f64 / OPS as f64;
        let waited_ns = sys.stm.stats.snapshot().quiesce_wait_ns;
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        long.join().unwrap();
        (us, waited_ns)
    };
    let (with_drain, wait_ns) = measure(QuiescePolicy::Always, false);
    let (without, _) = measure(QuiescePolicy::Selective, true);
    check(
        "long txn stalls unrelated committers (Always)",
        format!(
            "{with_drain:.2} us/commit, {:.1} ms total drain wait",
            wait_ns as f64 / 1e6
        ),
        wait_ns > 0,
    );
    check(
        "TM_NoQuiesce removes the coupling (Selective)",
        format!(
            "{without:.2} us/commit ({:.1}x faster)",
            with_drain / without
        ),
        without <= with_drain,
    );

    // 4. Figure 5 in one line per structure.
    println!("\nSet microbenchmarks (Fig. 5, 4 threads, 50% lookups):");
    for kind in ["list", "hash", "tree"] {
        let tput = |policy: QuiescePolicy| {
            let (t, _) = tle_bench_like(kind, policy);
            t / 1e6
        };
        let stm = tput(QuiescePolicy::Always);
        let noq = tput(QuiescePolicy::Never);
        let sel = tput(QuiescePolicy::Selective);
        check(
            &format!("{kind}: NoQ/SelectNoQ vs STM"),
            format!("STM {stm:.2} | NoQ {noq:.2} | SelectNoQ {sel:.2} Mops/s"),
            sel >= stm * 0.8 && noq >= stm * 0.8,
        );
    }

    println!("\ndone — see EXPERIMENTS.md for the full tables and cargo bench for the sweeps");
}

/// A minimal inline version of the Figure 5 trial (4 threads, 40k ops).
fn tle_bench_like(kind: &str, policy: QuiescePolicy) -> (f64, ()) {
    use tle_repro::txset::{TxHashSet, TxListSet, TxSet, TxTreeSet};
    let set: Arc<dyn TxSet> = match kind {
        "list" => Arc::new(TxListSet::new()),
        "hash" => Arc::new(TxHashSet::new()),
        _ => Arc::new(TxTreeSet::new()),
    };
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    sys.stm.set_policy(policy);
    {
        let th = sys.register();
        for k in (0..set.key_space()).step_by(2) {
            set.insert(&th, k);
        }
    }
    let threads = 4;
    let ops = 40_000u64;
    let t0 = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let sys = Arc::clone(&sys);
            let set = Arc::clone(&set);
            std::thread::spawn(move || {
                let th = sys.register();
                let mut rng = tle_repro::base::rng::XorShift64::new(t as u64);
                for _ in 0..ops {
                    let k = rng.below(set.key_space());
                    match rng.below(4) {
                        0 => {
                            set.insert(&th, k);
                        }
                        1 => {
                            set.remove(&th, k);
                        }
                        _ => {
                            set.contains(&th, k);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let secs = t0.elapsed().as_secs_f64();
    ((threads as f64 * ops as f64) / secs, ())
}
