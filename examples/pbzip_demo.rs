//! PBZip2 demo: parallel compression of a synthetic "file" under every
//! algorithm, with verification against the serial reference.
//!
//! Run: `cargo run --release --example pbzip_demo [-- <MiB> <threads>]`

use std::sync::Arc;
use tle_repro::pbz::{
    compress_parallel, compress_serial, decompress_parallel, gen_text, PipelineConfig,
};
use tle_repro::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mib: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let workers: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(4);
    let input = gen_text(0x650, mib * 1024 * 1024);
    let cfg = PipelineConfig {
        workers,
        block_size: 300_000,
        fifo_cap: 2 * workers,
    };
    println!(
        "PBZip2 demo: {} MiB input, {} workers, {}K blocks\n",
        mib,
        workers,
        cfg.block_size / 1000
    );

    // Serial reference for verification + ratio.
    let t0 = std::time::Instant::now();
    let reference = compress_serial(&input, cfg.block_size);
    let serial_secs = t0.elapsed().as_secs_f64();
    println!(
        "serial reference: {:.3}s, {} -> {} bytes ({:.2}x)",
        serial_secs,
        input.len(),
        reference.len(),
        input.len() as f64 / reference.len() as f64
    );

    for mode in ALL_MODES {
        let sys = Arc::new(TmSystem::new(mode));
        let t0 = std::time::Instant::now();
        let compressed = compress_parallel(&sys, &input, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            compressed, reference,
            "parallel output must be bit-identical"
        );
        let roundtrip = decompress_parallel(&sys, &compressed, &cfg).expect("decompress");
        assert_eq!(roundtrip, input, "roundtrip mismatch");
        println!(
            "{:<24} compress {:>6.3}s ({:.2}x vs serial)  [verified]",
            mode.label(),
            secs,
            serial_secs / secs
        );
    }
}
