//! Figure 5 in miniature: throughput of the three transactional sets under
//! the three quiescence policies, at one thread count.
//!
//! Run: `cargo run --release --example txset_demo [-- <threads>]`

use std::sync::{Arc, Barrier};
use tle_repro::prelude::*;
use tle_repro::txset::{TxHashSet, TxListSet, TxSet, TxTreeSet};

const OPS_PER_THREAD: u64 = 100_000;

fn run(set: Arc<dyn TxSet>, policy: QuiescePolicy, threads: usize) -> f64 {
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    sys.stm.set_policy(policy);
    {
        let th = sys.register();
        for k in (0..set.key_space()).step_by(2) {
            set.insert(&th, k);
        }
    }
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let sys = Arc::clone(&sys);
            let set = Arc::clone(&set);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let th = sys.register();
                let mut rng = tle_repro::base::rng::XorShift64::new(t as u64);
                let space = set.key_space();
                barrier.wait();
                for _ in 0..OPS_PER_THREAD {
                    let k = rng.below(space);
                    match rng.below(4) {
                        0 => {
                            set.insert(&th, k);
                        }
                        1 => {
                            set.remove(&th, k);
                        }
                        _ => {
                            set.contains(&th, k);
                        }
                    }
                }
            })
        })
        .collect();
    barrier.wait();
    let t0 = std::time::Instant::now();
    for h in handles {
        h.join().unwrap();
    }
    let secs = t0.elapsed().as_secs_f64();
    threads as f64 * OPS_PER_THREAD as f64 / secs / 1e6
}

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    println!("transactional sets, {threads} threads, 50% lookups (Mops/s)\n");
    println!(
        "{:<6} {:>10} {:>10} {:>10}",
        "set", "STM", "NoQ", "SelectNoQ"
    );
    for kind in ["list", "hash", "tree"] {
        let mk = |k: &str| -> Arc<dyn TxSet> {
            match k {
                "list" => Arc::new(TxListSet::new()),
                "hash" => Arc::new(TxHashSet::new()),
                _ => Arc::new(TxTreeSet::new()),
            }
        };
        let mut row = format!("{kind:<6}");
        for policy in [
            QuiescePolicy::Always,
            QuiescePolicy::Never,
            QuiescePolicy::Selective,
        ] {
            let tput = run(mk(kind), policy, threads);
            row.push_str(&format!(" {tput:>10.3}"));
        }
        println!("{row}");
    }
    println!("\npaper shape: NoQ/SelectNoQ above STM; SelectNoQ keeps privatization safety.");
}
