//! The paper's Listing 2, live: a producer/consumer queue where the
//! producer never quiesces and consumers quiesce only when they extract an
//! element. Prints how many quiescence drains each policy performed.
//!
//! Run: `cargo run --release --example producer_consumer`

use std::sync::Arc;
use tle_repro::pbz::TleFifo;
use tle_repro::prelude::*;

const ITEMS: u64 = 50_000;

fn run(policy: QuiescePolicy) -> (f64, u64, u64) {
    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    sys.stm.set_policy(policy);
    let q: Arc<TleFifo<u64>> = Arc::new(TleFifo::new("pc", 16));

    let t0 = std::time::Instant::now();
    let producer = {
        let sys = Arc::clone(&sys);
        let q = Arc::clone(&q);
        std::thread::spawn(move || {
            let th = sys.register();
            for i in 0..ITEMS {
                q.push(&th, Box::new(i)).unwrap();
            }
            q.close(&th);
        })
    };
    let consumers: Vec<_> = (0..3)
        .map(|_| {
            let sys = Arc::clone(&sys);
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let th = sys.register();
                let mut sum = 0u64;
                while let Some(v) = q.pop(&th) {
                    sum += *v;
                }
                sum
            })
        })
        .collect();
    producer.join().unwrap();
    let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(total, ITEMS * (ITEMS - 1) / 2, "items lost");

    let stm = sys.stm.stats.snapshot();
    (secs, stm.quiesces, stm.quiesce_skipped)
}

fn main() {
    println!(
        "producer/consumer ({} items, 1 producer, 3 consumers) — paper Listing 2\n",
        ITEMS
    );
    println!(
        "{:<12} {:>8} {:>12} {:>14}",
        "policy", "secs", "drains", "drains-skipped"
    );
    for policy in [
        QuiescePolicy::Always,
        QuiescePolicy::Selective,
        QuiescePolicy::Never,
    ] {
        let (secs, drains, skipped) = run(policy);
        println!(
            "{:<12} {:>8.3} {:>12} {:>14}",
            policy.label(),
            secs,
            drains,
            skipped
        );
    }
    println!(
        "\nSelectNoQ: the producer's transactions and empty-pop transactions skip the\n\
         drain (TM_NoQuiesce); only successful extractions — which privatize the\n\
         payload — pay for privatization safety."
    );
}
