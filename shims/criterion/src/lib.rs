//! Offline shim for `criterion`.
//!
//! The build container has no route to crates.io, so the real crate cannot
//! be vendored. This implements the subset of the Criterion 0.5 API the
//! workspace's benches use: [`Criterion::bench_function`], a calibrating
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros (including the `config = ...` form).
//!
//! Statistics are intentionally simple — per-iteration mean over a few
//! measured batches after a warm-up, printed as `name  time: [..]` lines —
//! because the workspace's own figure benches do their own measurement; this
//! runner only needs to execute and time, not to do rigorous inference.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        println!("{:<40} time: [{}]", id.as_ref(), fmt_ns(b.mean_ns));
        self
    }

    /// Called by `criterion_main!` after all groups run.
    pub fn final_summary(&mut self) {}
}

/// Timing context passed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    mean_ns: f64,
}

impl Bencher {
    /// Time `routine`, calibrating the batch size during warm-up so each
    /// measured batch is long enough for the clock to resolve.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, doubling the batch until it fills the warm-up budget.
        let mut batch: u64 = 1;
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if Instant::now() >= warm_deadline {
                break;
            }
            if elapsed < self.warm_up_time / 10 {
                batch = batch.saturating_mul(2);
            }
        }
        // Measurement: `sample_size` batches within the time budget.
        let mut total_ns: f64 = 0.0;
        let mut total_iters: u64 = 0;
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total_ns += t0.elapsed().as_nanos() as f64;
            total_iters += batch;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.mean_ns = if total_iters == 0 {
            0.0
        } else {
            total_ns / total_iters as f64
        };
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// `criterion_group!`: both the `name/config/targets` form and the short
/// `group_name, target, ...` form.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// `criterion_main!`: expands to `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn fmt_ns_picks_unit() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
    }
}
