//! Offline shim for `proptest`.
//!
//! The build container has no route to crates.io, so the real crate cannot
//! be vendored. This crate implements the subset of the proptest 1.x surface
//! the workspace's tests use, with a deterministic splitmix64 generator:
//!
//! - [`Strategy`] with `prop_map`, [`any`], ranges, tuples, and string
//!   char-class patterns (`"[a-z ]{1,12}"`-style) as strategies;
//! - `proptest::collection::vec`;
//! - the [`proptest!`] macro with `#![proptest_config(..)]`, `pat in expr`
//!   argument binding, and `prop_assert*` macros;
//! - [`ProptestConfig::with_cases`].
//!
//! **No shrinking**: a failing case reports its seed and values via the
//! panic message instead of minimizing. Case generation is deterministic
//! per test function (seeded from the function name), so failures
//! reproduce across runs.

use std::ops::Range;

/// Deterministic 64-bit generator (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is < 2^-64 per draw, far
        // below what a property test can observe.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// FNV-1a, used to derive a per-test deterministic seed from the test name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A source of arbitrary values of one type.
///
/// Object-safe core (`generate`) plus sized combinators, so strategies can
/// be boxed for [`Union`] (what `prop_oneof!` builds).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies of one value type; built by
/// `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Marker strategy returned by [`any`].
pub struct Any<T> {
    _t: std::marker::PhantomData<T>,
}

/// `any::<T>()`: the full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _t: std::marker::PhantomData,
    }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix finite values across magnitudes with occasional specials,
        // mimicking proptest's coverage of the f64 edge cases.
        match rng.below(16) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! srange_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
srange_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// String pattern strategies: a `&'static str` of the restricted regex form
/// `[class]{m,n}` (or a literal with no class) generates matching strings.
/// This covers the patterns the workspace's tests use; anything fancier
/// panics loudly rather than silently generating the wrong language.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, min, max) = parse_class_pattern(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }
}

/// Parse `[chars]{m,n}` into (expanded alphabet, m, n). `a-z` ranges are
/// expanded; everything else in the class is literal.
fn parse_class_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let body = pat
        .strip_prefix('[')
        .unwrap_or_else(|| panic!("unsupported string strategy pattern: {pat:?}"));
    let close = body
        .find(']')
        .unwrap_or_else(|| panic!("unsupported string strategy pattern: {pat:?}"));
    let class_src: Vec<char> = body[..close].chars().collect();
    let mut class = Vec::new();
    let mut i = 0;
    while i < class_src.len() {
        if i + 2 < class_src.len() && class_src[i + 1] == '-' {
            let (lo, hi) = (class_src[i] as u32, class_src[i + 2] as u32);
            assert!(lo <= hi, "bad range in pattern {pat:?}");
            for c in lo..=hi {
                class.push(char::from_u32(c).unwrap());
            }
            i += 3;
        } else {
            class.push(class_src[i]);
            i += 1;
        }
    }
    assert!(!class.is_empty(), "empty char class in pattern {pat:?}");
    let rep = &body[close + 1..];
    let rep = rep
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in pattern {pat:?}"));
    let (m, n) = match rep.split_once(',') {
        Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
        None => {
            let k = rep.trim().parse().unwrap();
            (k, k)
        }
    };
    assert!(m <= n, "bad repetition bounds in pattern {pat:?}");
    (class, m, n)
}

pub mod collection {
    //! `proptest::collection` subset: [`vec`](fn@vec).
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod prelude {
    //! The names tests import with `use proptest::prelude::*`.
    pub use crate::{any, Arbitrary, BoxedStrategy, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// `prop::collection::...` paths used inside `proptest!` bodies.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Build a [`Union`] over strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assertions that, like proptest's, abort only the current case — here they
/// panic with the case context attached (no shrinking pass exists to need a
/// resumable error type).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// The test-block macro. Supports the shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn name(x in strategy, y in strategy2) { body }
/// }
/// ```
///
/// Each function becomes a `#[test]` that runs `cases` deterministic
/// iterations (seed derived from the test name, so failures reproduce),
/// regenerating each argument from its strategy per case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( cfg = $cfg:expr; ) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::seeded(
                    seed ^ (case as u64).wrapping_mul(0xA076_1D64_78BD_642F),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::seeded(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let s = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn vec_respects_size() {
        let mut rng = crate::TestRng::seeded(2);
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(any::<u8>(), 3..7), &mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn string_pattern_matches_class() {
        let mut rng = crate::TestRng::seeded(3);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z ]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::TestRng::seeded(4);
        let st = prop_oneof![
            (0u64..1).prop_map(|_| 'a'),
            (0u64..1).prop_map(|_| 'b'),
            (0u64..1).prop_map(|_| 'c'),
        ];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(Strategy::generate(&st, &mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_args(a in 0u8..10, b in any::<bool>()) {
            prop_assert!(a < 10);
            let _ = b;
        }
    }
}
