//! Offline shim for `parking_lot`.
//!
//! The build container has no route to crates.io, so the real crate cannot
//! be vendored. This crate re-implements the (small) subset of the
//! `parking_lot` 0.12 API that the workspace uses, on top of `std::sync`:
//!
//! - [`Mutex`] / [`MutexGuard`]: `lock()` returns the guard directly (no
//!   poisoning), `try_lock()` returns an `Option`.
//! - [`RwLock`] / [`RwLockReadGuard`] / [`RwLockWriteGuard`].
//! - [`Condvar`]: waits take `&mut MutexGuard` instead of consuming the
//!   guard; timed waits return a [`WaitTimeoutResult`].
//!
//! Semantics match `parking_lot` where the workspace can observe them.
//! Poison from a panicking holder is deliberately ignored (`parking_lot`
//! has no poisoning); fairness and inline-fast-path properties of the real
//! crate are *not* reproduced, which is fine for correctness-level use.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive with the `parking_lot` API shape.
pub struct Mutex<T: ?Sized> {
    /// Tracks whether a guard is outstanding, for `is_locked()` (std has no
    /// non-consuming equivalent).
    locked: AtomicUsize,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            locked: AtomicUsize::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        self.locked.store(1, Ordering::Relaxed);
        MutexGuard {
            lock: self,
            inner: Some(g),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => {
                self.locked.store(1, Ordering::Relaxed);
                Some(MutexGuard {
                    lock: self,
                    inner: Some(g),
                })
            }
            Err(std::sync::TryLockError::Poisoned(p)) => {
                self.locked.store(1, Ordering::Relaxed);
                Some(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed) != 0
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]. The inner std guard lives in an `Option` so
/// [`Condvar`] waits can take it by value and hand it back.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Clear the flag before the std guard drops: a racing `is_locked`
        // may see "unlocked" slightly early, matching parking_lot's own
        // advisory-only contract for that method.
        self.lock.locked.store(0, Ordering::Relaxed);
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard invariant")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with the `parking_lot` API shape: waits re-borrow the
/// guard instead of consuming it.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        // std does not report whether a thread was woken; parking_lot's
        // callers in this workspace ignore the return value.
        false
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard invariant");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard invariant");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        if timeout.is_zero() {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, timeout)
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock with the `parking_lot` API shape.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(p) => RwLockReadGuard(p.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(p) => RwLockWriteGuard(p.into_inner()),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_unlock() {
        let m = Mutex::new(1);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.is_locked());
            assert!(m.try_lock().is_none());
        }
        assert!(!m.is_locked());
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_cross_thread() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
            assert!(l.try_write().is_none());
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
