//! `tle` — command-line front end for the TLE reproduction stack.
//!
//! ```console
//! $ tle gen --bytes 4000000 --seed 7 --out input.txt
//! $ tle compress --mode htm --threads 4 --block 300000 input.txt out.tzb
//! $ tle decompress out.tzb roundtrip.txt
//! $ tle encode --width 160 --height 96 --frames 24 --mode stm-condvar
//! $ tle micro --set tree --policy selectnoq --threads 4
//! ```
//!
//! Every subcommand prints the TM statistics of its run, so the tool
//! doubles as a quick probe of how an algorithm behaves on a workload.

use std::io::{Read, Write};
use std::sync::Arc;
use tle_repro::pbz::{PipelineConfig, StreamCompressor, StreamDecompressor};
use tle_repro::prelude::*;
use tle_repro::wfe::{encode_video, EncoderConfig, VideoSource};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(|s| s.as_str()) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("compress") => cmd_compress(&args[1..], false),
        Some("decompress") => cmd_compress(&args[1..], true),
        Some("encode") => cmd_encode(&args[1..]),
        Some("micro") => cmd_micro(&args[1..]),
        _ => {
            eprintln!(
                "usage: tle <gen|compress|decompress|encode|micro> [options]\n\
                 \n\
                 gen        --bytes N [--seed S] --out FILE\n\
                 compress   [--mode M] [--threads N] [--block N] IN OUT\n\
                 decompress IN OUT\n\
                 encode     [--mode M] [--threads N] [--width W] [--height H]\n\
                 \u{20}          [--frames N] [--qp Q] [--bitrate BITS_PER_FRAME]\n\
                 micro      [--set list|hash|tree] [--policy stm|noq|selectnoq]\n\
                 \u{20}          [--threads N] [--ops N]\n\
                 \n\
                 modes: baseline | stm-spin | stm-condvar | stm-noquiesce | htm | adaptive-htm"
            );
            2
        }
    };
    std::process::exit(code);
}

/// Pull `--key value` out of an argument list.
fn opt(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn opt_parse<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    opt(args, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Positional (non `--`) arguments.
fn positionals(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
        } else {
            out.push(a);
        }
    }
    out
}

fn parse_mode(args: &[String]) -> AlgoMode {
    match opt(args, "--mode").as_deref() {
        None => AlgoMode::StmCondvar,
        Some(spelling) => spelling.parse().unwrap_or_else(|err| {
            eprintln!("{err}");
            std::process::exit(2);
        }),
    }
}

fn print_stats(sys: &TmSystem) {
    let stm = sys.stm.stats.snapshot();
    let htm_c = sys.htm.stats.tx.commits.get();
    let htm_a = sys.htm.stats.tx.aborts.get();
    println!(
        "tm-stats: stm commits={} aborts={} quiesces={} skipped={} | \
         htm commits={} aborts={} | serial fallbacks={}",
        stm.commits,
        stm.aborts,
        stm.quiesces,
        stm.quiesce_skipped,
        htm_c,
        htm_a,
        sys.stats.serial_fallbacks.get()
    );
}

fn cmd_gen(args: &[String]) -> i32 {
    let bytes: usize = opt_parse(args, "--bytes", 1_000_000);
    let seed: u64 = opt_parse(args, "--seed", 0x650);
    let Some(out) = opt(args, "--out") else {
        eprintln!("gen: --out FILE is required");
        return 2;
    };
    let data = tle_repro::pbz::gen_text(seed, bytes);
    if let Err(e) = std::fs::write(&out, &data) {
        eprintln!("gen: cannot write {out}: {e}");
        return 1;
    }
    println!("wrote {bytes} bytes of synthetic text to {out}");
    0
}

fn cmd_compress(args: &[String], decompress: bool) -> i32 {
    let pos = positionals(args);
    let (Some(input), Some(output)) = (pos.first(), pos.get(1)) else {
        eprintln!("expected: IN OUT");
        return 2;
    };
    let mode = parse_mode(args);
    let sys = Arc::new(TmSystem::new(mode));
    let threads: usize = opt_parse(args, "--threads", 4);
    let block: usize = opt_parse(args, "--block", 300_000);
    let cfg = PipelineConfig {
        workers: threads,
        block_size: block,
        fifo_cap: 2 * threads.max(2),
    };

    let data = match std::fs::read(input) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return 1;
        }
    };
    let t0 = std::time::Instant::now();
    let result: Result<Vec<u8>, String> = if decompress {
        let mut d = StreamDecompressor::new(&data[..]);
        let mut out = Vec::new();
        d.read_to_end(&mut out)
            .map(|_| out)
            .map_err(|e| e.to_string())
    } else {
        let mut c = StreamCompressor::new(Arc::clone(&sys), cfg, Vec::new());
        c.write_all(&data)
            .and_then(|_| c.finish())
            .map_err(|e| e.to_string())
    };
    let out_bytes = match result {
        Ok(b) => b,
        Err(e) => {
            eprintln!("codec error: {e}");
            return 1;
        }
    };
    let secs = t0.elapsed().as_secs_f64();
    if let Err(e) = std::fs::write(output, &out_bytes) {
        eprintln!("cannot write {output}: {e}");
        return 1;
    }
    println!(
        "{} {} -> {} bytes in {:.3}s ({:.1} MB/s) under {}",
        if decompress {
            "decompressed"
        } else {
            "compressed"
        },
        data.len(),
        out_bytes.len(),
        secs,
        data.len() as f64 / secs / 1e6,
        mode.label()
    );
    print_stats(&sys);
    0
}

fn cmd_encode(args: &[String]) -> i32 {
    let mode = parse_mode(args);
    let sys = Arc::new(TmSystem::new(mode));
    let width: usize = opt_parse(args, "--width", 160);
    let height: usize = opt_parse(args, "--height", 96);
    let frames: usize = opt_parse(args, "--frames", 16);
    let cfg = EncoderConfig {
        workers: opt_parse(args, "--threads", 4),
        qp: opt_parse(args, "--qp", 12),
        keyframe_interval: 8,
        lookahead_depth: 4,
        target_bits_per_frame: opt(args, "--bitrate").and_then(|v| v.parse().ok()),
        frame_threads: opt_parse(args, "--frame-threads", 3),
        slices: opt_parse(args, "--slices", 1),
    };
    if !width.is_multiple_of(16) || !height.is_multiple_of(16) {
        eprintln!("encode: width/height must be multiples of 16");
        return 2;
    }
    let source = VideoSource::new(width, height, frames, opt_parse(args, "--seed", 0xFEED));
    let t0 = std::time::Instant::now();
    let video = encode_video(&sys, &source, &cfg);
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "encoded {}x{} x{} frames in {:.3}s under {}: {} bits total, {:.1} dB mean PSNR",
        width,
        height,
        frames,
        secs,
        mode.label(),
        video.total_bits,
        video.mean_psnr
    );
    for f in video.frames.iter().take(4) {
        println!(
            "  frame {:>3} {} bits={} psnr={:.1} digest={:08x}",
            f.index,
            if f.keyframe { "I" } else { "P" },
            f.bits,
            f.psnr.min(99.0),
            f.digest
        );
    }
    if video.frames.len() > 4 {
        println!("  ... ({} more frames)", video.frames.len() - 4);
    }
    print_stats(&sys);
    0
}

fn cmd_micro(args: &[String]) -> i32 {
    use tle_repro::txset::{TxHashSet, TxListSet, TxSet, TxTreeSet};
    let kind = opt(args, "--set").unwrap_or_else(|| "hash".into());
    let set: Arc<dyn TxSet> = match kind.as_str() {
        "list" => Arc::new(TxListSet::new()),
        "hash" => Arc::new(TxHashSet::new()),
        "tree" => Arc::new(TxTreeSet::new()),
        other => {
            eprintln!("unknown set '{other}'");
            return 2;
        }
    };
    let policy = match opt(args, "--policy").as_deref() {
        Some("noq") => QuiescePolicy::Never,
        Some("selectnoq") => QuiescePolicy::Selective,
        _ => QuiescePolicy::Always,
    };
    let threads: usize = opt_parse(args, "--threads", 4);
    let ops: u64 = opt_parse(args, "--ops", 200_000);

    let sys = Arc::new(TmSystem::new(AlgoMode::StmCondvar));
    sys.stm.set_policy(policy);
    {
        let th = sys.register();
        for k in (0..set.key_space()).step_by(2) {
            set.insert(&th, k);
        }
    }
    sys.reset_stats();
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let sys = Arc::clone(&sys);
            let set = Arc::clone(&set);
            std::thread::spawn(move || {
                let th = sys.register();
                let mut rng = tle_repro::base::rng::XorShift64::new(t as u64);
                for _ in 0..ops {
                    let k = rng.below(set.key_space());
                    match rng.below(4) {
                        0 => {
                            set.insert(&th, k);
                        }
                        1 => {
                            set.remove(&th, k);
                        }
                        _ => {
                            set.contains(&th, k);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "{kind} set, {} policy, {threads} threads: {:.3} Mops/s",
        policy.label(),
        threads as f64 * ops as f64 / secs / 1e6
    );
    print_stats(&sys);
    0
}
