//! `tle-trace` — run a workload with the transaction event ring enabled and
//! dump or summarize what it recorded.
//!
//! ```console
//! $ cargo run --features trace --bin tle-trace -- summary --mode htm --threads 4
//! $ cargo run --features trace --bin tle-trace -- dump --mode stm-condvar --tail 50
//! ```
//!
//! The tracer is a per-thread ring of the most recent events
//! ([`trace::RING_CAP`] per thread), so `dump` shows the *end* of each
//! thread's history — exactly the window you want when diagnosing why a
//! run went to the serial fallback. Without `--features trace` the hooks
//! compile to no-ops and this tool reports an empty ring rather than
//! fabricating data.

use std::sync::Arc;
use tle_repro::base::trace;
use tle_repro::base::AbortCause;
use tle_repro::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(|s| s.as_str()) {
        Some("summary") => run(&args[1..], false),
        Some("dump") => run(&args[1..], true),
        _ => {
            eprintln!(
                "usage: tle-trace <summary|dump> [options]\n\
                 \n\
                 summary    per-kind and per-cause event totals\n\
                 dump       print the recorded events themselves\n\
                 \n\
                 options:\n\
                 \u{20} --mode M      baseline|stm-spin|stm-condvar|stm-noquiesce|htm|\n\
                 \u{20}               adaptive-htm (default htm)\n\
                 \u{20} --threads N   worker threads for the probe workload (default 4)\n\
                 \u{20} --ops N       operations per thread (default 20000)\n\
                 \u{20} --cells N     shared counters, lower = more conflicts (default 4)\n\
                 \u{20} --tail N      dump: only the last N events (default all)\n\
                 \u{20} --cause C     dump: only events attributed to this abort cause\n\
                 \u{20}               (e.g. conflict, capacity, event; see `fig4` legend)\n\
                 \u{20} --faults N    run the probe under the standard torture fault plan\n\
                 \u{20}               seeded with N (surfaces fault-inject/escalate/\n\
                 \u{20}               quiesce-stall events)\n\
                 \n\
                 (build with `--features trace` or the ring records nothing)"
            );
            2
        }
    };
    std::process::exit(code);
}

/// Diagnosable CLI failures: an unrecognized flag names itself on stderr
/// and exits 2 instead of being silently ignored. Returns the usage exit
/// code as an error so `run` can propagate it.
fn reject_unknown_flags(args: &[String]) -> Result<(), i32> {
    const VALUE_FLAGS: [&str; 7] = [
        "--mode",
        "--threads",
        "--ops",
        "--cells",
        "--tail",
        "--cause",
        "--faults",
    ];
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if VALUE_FLAGS.contains(&a) {
            i += 2; // skip the flag's value
            continue;
        }
        eprintln!(
            "tle-trace: unknown argument `{a}` (valid: {})",
            VALUE_FLAGS.join(" ")
        );
        return Err(2);
    }
    Ok(())
}

fn opt(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn opt_parse<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    opt(args, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn parse_mode(args: &[String]) -> Result<AlgoMode, i32> {
    match opt(args, "--mode") {
        None => Ok(AlgoMode::HtmCondvar),
        Some(spec) => spec.parse::<AlgoMode>().map_err(|e| {
            eprintln!("{e}");
            2
        }),
    }
}

/// A deliberately contended probe: `threads` workers increment a handful of
/// shared counters under one elided lock. Small `--cells` values produce
/// conflict aborts; the trace shows how the runtime resolved them.
fn run(args: &[String], dump: bool) -> i32 {
    if let Err(code) = reject_unknown_flags(args) {
        return code;
    }
    let mode = match parse_mode(args) {
        Ok(m) => m,
        Err(code) => return code,
    };
    let threads: usize = opt_parse(args, "--threads", 4);
    let ops: u64 = opt_parse(args, "--ops", 20_000);
    let cells: usize = opt_parse(args, "--cells", 4).max(1);
    if !trace::compiled() {
        eprintln!(
            "note: built without the `trace` feature; the event ring is a \
             no-op and only counter-based statistics follow.\n"
        );
    }

    let fault_seed = opt(args, "--faults").and_then(|v| v.parse::<u64>().ok());
    if let Some(seed) = fault_seed {
        tle_repro::base::fault::install(tle_bench::torture::torture_plan(seed));
    }

    let sys = Arc::new(TmSystem::new(mode));
    let lock = Arc::new(ElidableMutex::new("probe"));
    let shared: Arc<Vec<TCell<u64>>> = Arc::new((0..cells).map(|_| TCell::new(0)).collect());
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let sys = Arc::clone(&sys);
            let lock = Arc::clone(&lock);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let th = sys.register();
                let mut rng = tle_repro::base::rng::XorShift64::new(0x7ACE ^ t as u64);
                for _ in 0..ops {
                    let i = rng.below(shared.len() as u64) as usize;
                    th.tx(&lock).run(|ctx| {
                        let v = ctx.read(&shared[i])?;
                        ctx.write(&shared[i], v + 1)?;
                        Ok(())
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total: u64 = shared.iter().map(|c| c.load_direct()).sum();
    assert_eq!(total, threads as u64 * ops, "probe lost updates");

    let events = trace::snapshot();
    if dump {
        // `--cause` narrows the dump to events attributed to one abort
        // cause (Abort/Conflict/Retry/FaultInject events carry one).
        let filtered: Vec<_> = match opt(args, "--cause").as_deref() {
            None => events.iter().collect(),
            Some(label) => {
                let Some(cause) = AbortCause::ALL.iter().copied().find(|c| c.label() == label)
                else {
                    eprintln!(
                        "unknown cause {label}; valid: {}",
                        AbortCause::ALL.map(|c| c.label()).join(" ")
                    );
                    return 2;
                };
                events.iter().filter(|e| e.cause == Some(cause)).collect()
            }
        };
        let tail: usize = opt_parse(args, "--tail", filtered.len());
        let skip = filtered.len().saturating_sub(tail);
        if skip > 0 {
            println!("... {skip} earlier events elided (--tail {tail}) ...");
        }
        for ev in &filtered[skip..] {
            println!("{ev}");
        }
        println!();
    }

    // Summary always prints: from the ring when compiled, and the
    // authoritative per-cause counters either way.
    let summary = trace::TraceSummary::of(&events);
    println!(
        "probe: mode={} threads={} ops/thread={} cells={}",
        mode.label(),
        threads,
        ops,
        cells
    );
    println!(
        "event ring: {} events from {} threads (cap {} per thread)",
        events.len(),
        summary.threads,
        trace::RING_CAP
    );
    for kind in trace::TraceKind::ALL {
        let n = summary.kind(kind);
        if n > 0 {
            println!("  {:<14} {n}", kind.label());
        }
    }
    let ring_aborts: u64 = AbortCause::ALL.iter().map(|&c| summary.aborts(c)).sum();
    if ring_aborts > 0 {
        println!("ring abort causes:");
        for cause in AbortCause::ALL {
            let n = summary.aborts(cause);
            if n > 0 {
                println!("  {:<17} {n}", cause.label());
            }
        }
    }
    if fault_seed.is_some() {
        use tle_repro::base::fault::{self, Hazard};
        let snap = fault::snapshot();
        println!("fault plane ({} fired):", snap.total_fired());
        for h in Hazard::ALL {
            let fired = snap.fired(h);
            if fired > 0 {
                println!(
                    "  {:<17} fired {fired:>6}  armed {:>6}",
                    h.label(),
                    snap.armed(h)
                );
            }
        }
        fault::clear();
    }
    println!();
    print!("{}", sys.report());
    0
}
