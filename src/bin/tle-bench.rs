//! `tle-bench` — the machine-readable perf trajectory (`BENCH_<n>.json`).
//!
//! ```text
//! cargo run --release --bin tle-bench -- emit --out BENCH_6.json
//! cargo run --release --bin tle-bench -- emit --quick --out /tmp/new.json
//! cargo run --release --bin tle-bench -- validate BENCH_6.json
//! cargo run --release --bin tle-bench -- compare BENCH_6.json /tmp/new.json
//! ```
//!
//! Exit codes: 0 clean, 1 regression or schema error (`--warn` downgrades
//! *timing* regressions only — schema errors always fail), 2 usage error.

use std::process::ExitCode;
use std::time::Duration;
use tle_bench::json::Json;
use tle_bench::perf::{compare, emit_report, stable_view, validate, EmitConfig, TOLERANCE};
use tle_bench::trajectory;
use tle_bench::workloads::TrialStats;
use tle_kv::{
    build_system, run_driver_on, run_session_driver_async, run_session_driver_threads, KvConfig,
    SessionConfig,
};

const USAGE: &str = "\
tle-bench: emit, validate, and compare BENCH_<n>.json perf trajectories

USAGE: tle-bench <COMMAND> [OPTIONS]

COMMANDS:
  emit                    run the bench suite and print the JSON report
    --quick               CI smoke sizing (default: full artifact sizing)
    --out <file>          write to <file> instead of stdout
  validate <file>         check a report against the schema
  compare <old> <new>     fail on >10% throughput loss on any recorded run
    --warn                report timing regressions without failing
    --stable              also require identical stable views (schema bytes)
  trajectory [files...]   print the per-figure ops/sec history across every
                          committed BENCH_<n>.json (default: discover them
                          in the working directory)
  kv-sessions             A/B one session-mode point: async multiplexing
                          versus thread-per-session, printing the goodput
                          ratio
    --sessions <n>        logical sessions (default 256)
    --workers <n>         async executor worker threads (default 8)
    --requests <n>        requests per session (default 10)
    --think-ns <n>        per-request think time (default 2000000)
    --mode <m>            algorithm mode (default stm-condvar)
    --seed <n>            session RNG seed (default 42)
    --min-ratio <f>       fail when async/threads goodput < f (default 0)
  kv                      run the sharded KV serving-workload driver once
    --threads <n>         worker threads (default 4)
    --shards <n>          shard locks (default 8)
    --requests <n>        requests per thread (default 20000)
    --mode <m>            algorithm mode (default stm-condvar)
    --gap-ns <n>          open-loop arrival gap per thread; 0 = closed loop
    --storm               inject the hot-key storm
    --plane               enable the deadline/admission plane (1ms budget)
    --deadline-us <n>     per-request budget in microseconds (implies plane)
    --seed <n>            driver RNG seed (default 42)
  -h, --help              this help
";

/// The `kv` subcommand body; `Err` is a usage error (exit 2 at the caller).
fn kv_cmd(rest: &[String]) -> Result<ExitCode, String> {
    fn num<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> Result<T, String> {
        let v = v.ok_or_else(|| format!("{flag} expects a value"))?;
        v.parse()
            .map_err(|_| format!("{flag}: `{v}` is not a valid value"))
    }
    let mut kv = KvConfig {
        requests: 20_000,
        ..KvConfig::quick()
    };
    let mut plane_deadline: Option<Duration> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => kv.threads = num(a, it.next())?,
            "--shards" => kv.shards = num(a, it.next())?,
            "--requests" => kv.requests = num(a, it.next())?,
            "--gap-ns" => kv.gap_ns = num(a, it.next())?,
            "--seed" => kv.seed = num(a, it.next())?,
            "--mode" => {
                let v = it.next().ok_or("--mode expects a value")?;
                kv.mode = v.parse().map_err(|e| format!("{e}"))?;
            }
            "--storm" => kv = kv.with_storm(),
            "--plane" => {
                plane_deadline.get_or_insert(Duration::from_millis(1));
            }
            "--deadline-us" => {
                let us: u64 = num(a, it.next())?;
                plane_deadline = Some(Duration::from_micros(us));
            }
            other => return Err(format!("unknown kv option `{other}`")),
        }
    }
    if kv.threads == 0 || kv.shards == 0 || kv.requests == 0 {
        return Err("kv --threads/--shards/--requests must be non-zero".into());
    }
    if let Some(d) = plane_deadline {
        kv = kv.with_plane(d);
    }
    eprintln!(
        "tle-bench: kv driver: mode={} threads={} shards={} requests/thread={} \
         storm={} plane={}",
        kv.mode.label(),
        kv.threads,
        kv.shards,
        kv.requests,
        kv.storm.is_some(),
        kv.admission,
    );
    let sys = build_system(&kv);
    let report = run_driver_on(&sys, &kv);
    let stats = TrialStats::capture(&sys);
    println!("{}", report.summary());
    println!(
        "tm: commits={} aborts={} serial_fallbacks={} sheds={} deadline_exceeded={} [{}]",
        stats.stm.commits + stats.htm_commits,
        stats.stm.aborts + stats.htm_aborts,
        stats.serial_fallbacks,
        sys.stats.sheds.get(),
        sys.stats.deadline_exceeded.get(),
        stats.abort_breakdown(),
    );
    Ok(ExitCode::SUCCESS)
}

/// The `kv-sessions` subcommand: run one curve point both ways and print
/// the async/threads goodput ratio (the PR-8 acceptance metric).
fn kv_sessions_cmd(rest: &[String]) -> Result<ExitCode, String> {
    fn num<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> Result<T, String> {
        let v = v.ok_or_else(|| format!("{flag} expects a value"))?;
        v.parse()
            .map_err(|_| format!("{flag}: `{v}` is not a valid value"))
    }
    let mut scfg = SessionConfig {
        sessions: 256,
        workers: 8,
        requests_per_session: 10,
        think_ns: 2_000_000,
        ..SessionConfig::quick()
    };
    let mut min_ratio = 0.0f64;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sessions" => scfg.sessions = num(a, it.next())?,
            "--workers" => scfg.workers = num(a, it.next())?,
            "--requests" => scfg.requests_per_session = num(a, it.next())?,
            "--think-ns" => scfg.think_ns = num(a, it.next())?,
            "--seed" => scfg.base.seed = num(a, it.next())?,
            "--min-ratio" => min_ratio = num(a, it.next())?,
            "--mode" => {
                let v = it.next().ok_or("--mode expects a value")?;
                scfg.base.mode = v.parse().map_err(|e| format!("{e}"))?;
            }
            other => return Err(format!("unknown kv-sessions option `{other}`")),
        }
    }
    if scfg.sessions == 0 || scfg.workers == 0 || scfg.requests_per_session == 0 {
        return Err("kv-sessions --sessions/--workers/--requests must be non-zero".into());
    }
    eprintln!(
        "tle-bench: kv-sessions: mode={} sessions={} workers={} requests/session={} think={}ns",
        scfg.base.mode.label(),
        scfg.sessions,
        scfg.workers,
        scfg.requests_per_session,
        scfg.think_ns,
    );
    let async_report = run_session_driver_async(&scfg);
    println!(
        "async   [{} workers]: {}",
        scfg.workers,
        async_report.summary()
    );
    let thread_report = run_session_driver_threads(&scfg);
    println!(
        "threads [{} threads]: {}",
        scfg.sessions,
        thread_report.summary()
    );
    let ratio = async_report.goodput_per_sec / thread_report.goodput_per_sec;
    println!("async/threads goodput ratio: {ratio:.3}");
    if ratio < min_ratio {
        eprintln!("tle-bench: ratio {ratio:.3} below required minimum {min_ratio:.3}");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn read_report(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("tle-bench: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Accept both `emit` and `--emit` spellings for the subcommand.
    let cmd = match args.first().map(|s| s.trim_start_matches("--")) {
        Some("emit") => "emit",
        Some("validate") => "validate",
        Some("compare") => "compare",
        Some("trajectory") => "trajectory",
        Some("kv") => "kv",
        Some("kv-sessions") => "kv-sessions",
        Some("help") | Some("h") => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => return usage_error(&format!("unknown command `{other}`")),
        None => return usage_error("missing command"),
    };
    let rest = &args[1..];

    match cmd {
        "emit" => {
            let mut cfg = EmitConfig::full();
            let mut out_path: Option<String> = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--quick" => cfg = EmitConfig::quick(),
                    "--out" => match it.next() {
                        Some(p) => out_path = Some(p.clone()),
                        None => return usage_error("--out expects a file path"),
                    },
                    other => return usage_error(&format!("unknown emit option `{other}`")),
                }
            }
            eprintln!(
                "tle-bench: emitting {} report ({} threads, {} micro ops/thread)...",
                cfg.label, cfg.threads, cfg.micro_ops
            );
            let report = emit_report(&cfg);
            if let Err(e) = validate(&report) {
                eprintln!("tle-bench: emitted report failed self-validation: {e}");
                return ExitCode::FAILURE;
            }
            let text = report.render();
            match out_path {
                Some(p) => {
                    if let Err(e) = std::fs::write(&p, &text) {
                        eprintln!("tle-bench: cannot write {p}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("tle-bench: wrote {p}");
                }
                None => print!("{text}"),
            }
            ExitCode::SUCCESS
        }
        "validate" => {
            let [path] = rest else {
                return usage_error("validate expects exactly one file");
            };
            let report = match read_report(path) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("tle-bench: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match validate(&report) {
                Ok(()) => {
                    println!("{path}: valid tle-bench-trajectory document");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("tle-bench: {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "trajectory" => {
            // Explicit files, or every committed BENCH_<n>.json in the
            // working directory.
            let paths: Vec<std::path::PathBuf> = if rest.is_empty() {
                match trajectory::discover(std::path::Path::new(".")) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("tle-bench: cannot scan for BENCH_<n>.json: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                rest.iter().map(std::path::PathBuf::from).collect()
            };
            if paths.is_empty() {
                return usage_error("trajectory: no BENCH_<n>.json artifacts found");
            }
            match trajectory::load(&paths) {
                Ok(t) => {
                    println!(
                        "tle-bench trajectory: {} artifact(s), PRs {:?}, {} run row(s)",
                        paths.len(),
                        t.prs,
                        t.rows.len()
                    );
                    print!("{}", trajectory::render(&t));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("tle-bench: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "kv" => match kv_cmd(rest) {
            Ok(code) => code,
            Err(msg) => usage_error(&msg),
        },
        "kv-sessions" => match kv_sessions_cmd(rest) {
            Ok(code) => code,
            Err(msg) => usage_error(&msg),
        },
        "compare" => {
            let mut warn = false;
            let mut stable = false;
            let mut files: Vec<&String> = Vec::new();
            for a in rest {
                match a.as_str() {
                    "--warn" => warn = true,
                    "--stable" => stable = true,
                    f if !f.starts_with('-') => files.push(a),
                    other => return usage_error(&format!("unknown compare option `{other}`")),
                }
            }
            let [old_path, new_path] = files[..] else {
                return usage_error("compare expects exactly two files: <old> <new>");
            };
            let (old, new) = match (read_report(old_path), read_report(new_path)) {
                (Ok(o), Ok(n)) => (o, n),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("tle-bench: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Schema errors (including a run vanishing) are hard failures
            // regardless of --warn; only timing verdicts are downgradable.
            let outcome = match compare(&old, &new) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("tle-bench: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if stable && stable_view(&old) != stable_view(&new) {
                eprintln!("tle-bench: stable views differ (schema drift between reports)");
                return ExitCode::FAILURE;
            }
            println!(
                "compared {} run(s): {} regression(s), {} improvement(s) \
                 (tolerance {:.0}%)",
                outcome.compared,
                outcome.regressions.len(),
                outcome.improvements.len(),
                TOLERANCE * 100.0
            );
            for line in &outcome.improvements {
                println!("  faster: {line}");
            }
            for line in &outcome.regressions {
                println!("  REGRESSION: {line}");
            }
            if outcome.regressions.is_empty() {
                ExitCode::SUCCESS
            } else if warn {
                println!("(--warn: regressions reported as warnings only)");
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => unreachable!(),
    }
}
