//! `tle-torture` — rcutorture-style stress runs: real workloads under a
//! seeded fault schedule, judged by invariant oracles.
//!
//! ```console
//! $ cargo run --release --bin tle-torture -- --seed 1 --mode all
//! $ cargo run --release --bin tle-torture -- --seed 7 --mode htm --repro
//! ```
//!
//! Exit status: 0 when every oracle held (and, under `--repro`, both runs
//! produced identical per-cause abort counts); 1 otherwise. See
//! `tle_bench::torture` for what each phase checks.

use tle_bench::torture::{run_torture, TortureConfig};
use tle_core::{AlgoMode, ALL_MODES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        std::process::exit(2);
    }
    reject_unknown_flags(&args);
    let seed: u64 = opt_parse(&args, "--seed", 1);
    let workers: usize = opt_parse(&args, "--workers", 3);
    let ops: u64 = opt_parse(&args, "--ops", 1_500);
    let repro = args.iter().any(|a| a == "--repro");
    let adaptive = args.iter().any(|a| a == "--adaptive");
    let deadline = args.iter().any(|a| a == "--deadline");
    let async_exec = args.iter().any(|a| a == "--async");
    let modes: Vec<AlgoMode> = match opt(&args, "--mode").as_deref() {
        None | Some("all") => ALL_MODES.to_vec(),
        Some(spec) => match spec.parse::<AlgoMode>() {
            Ok(mode) => vec![mode],
            Err(e) => {
                eprintln!("{e}");
                usage();
                std::process::exit(2);
            }
        },
    };

    let mut failed = false;
    for mode in modes {
        if repro {
            // Determinism contract: single worker, txset only (plus the
            // single-threaded flip phase under --adaptive) — two runs must
            // agree on every per-cause abort count, fault tally and mode
            // flip.
            let cfg = TortureConfig {
                ops_per_worker: ops,
                adaptive,
                deadline,
                async_exec,
                ..TortureConfig::repro(seed, mode)
            };
            let a = run_torture(&cfg);
            let b = run_torture(&cfg);
            print!("{}", a.render());
            let (ka, kb) = (a.repro_key(), b.repro_key());
            if ka != kb {
                println!("  REPRO MISMATCH:\n    run1 {ka}\n    run2 {kb}");
                failed = true;
            } else {
                println!("  repro: two runs identical ({ka})");
            }
            failed |= !a.ok() || !b.ok();
        } else {
            let cfg = TortureConfig {
                workers,
                ops_per_worker: ops,
                adaptive,
                deadline,
                async_exec,
                ..TortureConfig::quick(seed, mode)
            };
            let report = run_torture(&cfg);
            print!("{}", report.render());
            failed |= !report.ok();
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn usage() {
    eprintln!(
        "usage: tle-torture [options]\n\
         \n\
         options:\n\
         \u{20} --seed N     fault-schedule and workload seed (default 1)\n\
         \u{20} --mode M     all|baseline|stm-spin|stm-condvar|stm-noquiesce|htm|\n\
         \u{20}              adaptive-htm|adaptive-htm-lazy (default all; the lazy\n\
         \u{20}              mode is opt-in and not part of `all`; dev/check\n\
         \u{20}              builds also accept adaptive-htm-lazy-unsafe)\n\
         \u{20} --workers N  txset/pipeline worker threads (default 3)\n\
         \u{20} --ops N      set operations per worker (default 1500)\n\
         \u{20} --adaptive   also torture per-lock mode flips: a counter runs\n\
         \u{20}              while a seeded schedule retargets its lock's mode;\n\
         \u{20}              exact count + flip sequence are the oracles\n\
         \u{20} --deadline   also torture the deadline gate: a seeded subset of\n\
         \u{20}              requests carries a zero retry-time budget and must\n\
         \u{20}              be refused with DeadlineExceeded, effect-free\n\
         \u{20} --async      also torture the async executor: tasks multiplex\n\
         \u{20}              run_async attempts and condvar ping-pong through the\n\
         \u{20}              waker path; exact counters + completed rounds are\n\
         \u{20}              the oracles, the phase checksum joins the repro key\n\
         \u{20} --repro      single-worker deterministic run, executed twice;\n\
         \u{20}              fails unless both runs match per-cause abort counts\n\
         \u{20}              (and, with --adaptive, the mode-flip sequence;\n\
         \u{20}              with --deadline, the expiry tally; with --async,\n\
         \u{20}              the async phase checksum)"
    );
}

/// Diagnosable CLI failures: an unrecognized flag names itself on stderr
/// and exits 2 instead of being silently ignored.
fn reject_unknown_flags(args: &[String]) {
    const VALUE_FLAGS: [&str; 4] = ["--seed", "--workers", "--ops", "--mode"];
    const BOOL_FLAGS: [&str; 4] = ["--repro", "--adaptive", "--deadline", "--async"];
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if VALUE_FLAGS.contains(&a) {
            i += 2; // skip the flag's value
            continue;
        }
        if !BOOL_FLAGS.contains(&a) {
            eprintln!("tle-torture: unknown argument `{a}`\n");
            usage();
            std::process::exit(2);
        }
        i += 1;
    }
}

fn opt(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn opt_parse<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    opt(args, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
