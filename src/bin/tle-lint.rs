//! `tle-lint` — transaction-safety static analysis over the workspace.
//!
//! ```text
//! cargo run --bin tle-lint -- --deny --format json
//! cargo run --bin tle-lint -- crates/pbz examples
//! ```
//!
//! Exit codes: 0 clean, 1 findings under `--deny` (or stale suppressions
//! under `--deny-stale`), 2 usage error.

use std::path::PathBuf;
use std::process::ExitCode;
use tle_lint::{lint_paths, render_human, render_json, LINT_RULES};

const USAGE: &str = "\
tle-lint: transaction-safety static analysis for TLE atomic blocks

USAGE: tle-lint [OPTIONS] [PATHS...]

PATHS default to: crates examples src tests

OPTIONS:
  --format <human|json>  output format (default human)
  --deny                 exit 1 when any finding is active
  --deny-stale           also exit 1 on stale suppressions (A2)
  --list-rules           print the rule table and exit
  -h, --help             this help
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut format_json = false;
    let mut deny = false;
    let mut deny_stale = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("human") => format_json = false,
                Some("json") => format_json = true,
                other => {
                    eprintln!(
                        "tle-lint: --format expects `human` or `json`, got `{}`",
                        other.unwrap_or("<nothing>")
                    );
                    return ExitCode::from(2);
                }
            },
            "--deny" => deny = true,
            "--deny-stale" => deny_stale = true,
            "--list-rules" => {
                for r in LINT_RULES {
                    println!("{}  {:<24} {}", r.id(), r.slug(), r.hazard());
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("tle-lint: unknown flag `{flag}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    if paths.is_empty() {
        paths = ["crates", "examples", "src", "tests"]
            .iter()
            .map(PathBuf::from)
            .filter(|p| p.exists())
            .collect();
    }
    for p in &paths {
        if !p.exists() {
            eprintln!("tle-lint: path `{}` does not exist", p.display());
            return ExitCode::from(2);
        }
    }

    let report = match lint_paths(&paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tle-lint: io error: {e}");
            return ExitCode::from(2);
        }
    };

    if format_json {
        println!("{}", render_json(&report));
    } else {
        print!("{}", render_human(&report, deny_stale));
    }

    let failed = (deny && report.total_findings() > 0)
        || (deny_stale && (report.total_findings() > 0 || report.total_stale() > 0));
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
