//! `tle-lint` — transaction-safety static analysis over the workspace.
//!
//! ```text
//! cargo run --bin tle-lint -- --deny --format json
//! cargo run --bin tle-lint -- --deny --deny-stale --format sarif
//! cargo run --bin tle-lint -- --baseline write lint-baseline.json
//! cargo run --bin tle-lint -- --deny --baseline check lint-baseline.json
//! cargo run --bin tle-lint -- crates/pbz examples
//! ```
//!
//! Exit codes: 0 clean, 1 findings under `--deny` (or stale suppressions
//! under `--deny-stale`, or new-vs-baseline findings under
//! `--baseline check`), 2 usage error.

use std::path::PathBuf;
use std::process::ExitCode;
use tle_lint::{
    check_baseline, lint_paths, render_baseline, render_human, render_json, render_sarif,
    LINT_RULES,
};

const USAGE: &str = "\
tle-lint: transaction-safety static analysis for TLE atomic blocks

USAGE: tle-lint [OPTIONS] [PATHS...]

PATHS default to: crates examples src tests

OPTIONS:
  --format <human|json|sarif>     output format (default human)
  --baseline <write|check> <file> record active findings, or fail only on
                                  findings not present in the recorded set
  --deny                          exit 1 when any finding is active
  --deny-stale                    also exit 1 on stale suppressions (A2)
  --list-rules                    print the rule table and exit
  -h, --help                      this help
";

enum Format {
    Human,
    Json,
    Sarif,
}

enum BaselineMode {
    Write(PathBuf),
    Check(PathBuf),
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut format = Format::Human;
    let mut baseline: Option<BaselineMode> = None;
    let mut deny = false;
    let mut deny_stale = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!(
                        "tle-lint: --format expects `human`, `json` or `sarif`, got `{}`",
                        other.unwrap_or("<nothing>")
                    );
                    return ExitCode::from(2);
                }
            },
            "--baseline" => {
                let mode = it.next().map(String::as_str);
                let file = it.next().map(PathBuf::from);
                baseline = match (mode, file) {
                    (Some("write"), Some(f)) => Some(BaselineMode::Write(f)),
                    (Some("check"), Some(f)) => Some(BaselineMode::Check(f)),
                    (mode, _) => {
                        eprintln!(
                            "tle-lint: --baseline expects `write <file>` or `check <file>`, \
                             got `{}`",
                            mode.unwrap_or("<nothing>")
                        );
                        return ExitCode::from(2);
                    }
                };
            }
            "--deny" => deny = true,
            "--deny-stale" => deny_stale = true,
            "--list-rules" => {
                for r in LINT_RULES {
                    println!("{}  {:<24} {}", r.id(), r.slug(), r.hazard());
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("tle-lint: unknown flag `{flag}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    if paths.is_empty() {
        paths = ["crates", "examples", "src", "tests"]
            .iter()
            .map(PathBuf::from)
            .filter(|p| p.exists())
            .collect();
    }
    for p in &paths {
        if !p.exists() {
            eprintln!("tle-lint: path `{}` does not exist", p.display());
            return ExitCode::from(2);
        }
    }

    let report = match lint_paths(&paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tle-lint: io error: {e}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Human => print!("{}", render_human(&report, deny_stale)),
        Format::Json => println!("{}", render_json(&report)),
        Format::Sarif => print!("{}", render_sarif(&report)),
    }

    // Baseline handling: `write` records and never fails; `check` replaces
    // the plain `--deny` verdict with "new findings only".
    let baseline_is_check = matches!(&baseline, Some(BaselineMode::Check(_)));
    let mut baseline_failed = false;
    match baseline {
        Some(BaselineMode::Write(file)) => {
            if let Err(e) = std::fs::write(&file, render_baseline(&report)) {
                eprintln!("tle-lint: cannot write baseline `{}`: {e}", file.display());
                return ExitCode::from(2);
            }
        }
        Some(BaselineMode::Check(file)) => {
            let src = match std::fs::read_to_string(&file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("tle-lint: cannot read baseline `{}`: {e}", file.display());
                    return ExitCode::from(2);
                }
            };
            match check_baseline(&report, &src) {
                Ok(fresh) if fresh.is_empty() => {}
                Ok(fresh) => {
                    for fp in &fresh {
                        eprintln!("tle-lint: new finding not in baseline: {fp}");
                    }
                    baseline_failed = true;
                }
                Err(e) => {
                    eprintln!("tle-lint: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => {}
    }

    let findings_fail = if baseline_is_check {
        baseline_failed
    } else {
        report.total_findings() > 0
    };
    let failed =
        ((deny || deny_stale) && findings_fail) || (deny_stale && report.total_stale() > 0);
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
