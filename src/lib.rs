//! # tle-repro — reproduction of *Practical Experience with Transactional
//! Lock Elision* (Zhou, Zardoshti, Spear; ICPP 2017)
//!
//! This is the umbrella crate: it re-exports the public API of the whole
//! stack and hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`).
//!
//! ## Layer map
//!
//! ```text
//!  tle-base   word cells, version clock, orecs, slots, serial gate
//!  tle-stm    the ml_wt software TM (+ quiescence, TM_NoQuiesce)
//!  tle-htm    the simulated best-effort hardware TM
//!  tle-core   TLE runtime: 5 algorithms, retry policy, condvars
//!  tle-txset  list/hash/tree set microbenchmarks (Figure 5)
//!  tle-pbz    PBZip2-style parallel block compressor (Figure 2)
//!  tle-wfe    x265-style wavefront encoder (Figures 3-4)
//!  tle-bench  one bench target per paper table/figure
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use tle_repro::prelude::*;
//! use std::sync::Arc;
//!
//! // Pick an algorithm: the paper's five are all here.
//! let sys = Arc::new(TmSystem::new(AlgoMode::HtmCondvar));
//! let th = sys.register();
//! let lock = ElidableMutex::new("account");
//! let balance = TCell::new(100i64);
//!
//! // A critical section, written once, elided transparently.
//! th.tx(&lock).run(|ctx| {
//!     let b = ctx.read(&balance)?;
//!     ctx.write(&balance, b - 30)?;
//!     Ok(())
//! });
//! assert_eq!(balance.load_direct(), 70);
//! ```

pub use tle_base as base;
pub use tle_core as core;
pub use tle_htm as htm;
pub use tle_pbz as pbz;
pub use tle_stm as stm;
pub use tle_txset as txset;
pub use tle_wfe as wfe;

/// The names most programs need.
pub mod prelude {
    pub use tle_base::{AbortCause, TCell, TxVal};
    pub use tle_core::{
        AdaptiveConfig, AdmissionConfig, AdmissionStep, AlgoMode, ControllerHandle, ElidableMutex,
        InvalidAlgoMode, ModeSwitchEvent, ParseAlgoModeError, SwitchReason, ThreadHandle,
        TlePolicy, TmSystem, TmSystemBuilder, TxCondvar, TxCtx, TxError, TxHints, ALL_MODES,
    };
    pub use tle_stm::QuiescePolicy;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Arc;

    #[test]
    fn doc_example_compiles_and_runs() {
        let sys = Arc::new(TmSystem::new(AlgoMode::HtmCondvar));
        let th = sys.register();
        let lock = ElidableMutex::new("account");
        let balance = TCell::new(100i64);
        th.tx(&lock).run(|ctx| {
            let b = ctx.read(&balance)?;
            ctx.write(&balance, b - 30)?;
            Ok(())
        });
        assert_eq!(balance.load_direct(), 70);
    }
}
